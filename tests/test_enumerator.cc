/** @file Enumerator correctness, including the NASBench-101 count. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/wl_hash.hh"
#include "nasbench/enumerator.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;

/** Brute-force unique count by pairwise exact isomorphism. */
size_t
bruteForceUniqueCount(const SpaceLimits &limits)
{
    std::vector<CellSpec> unique;
    for (int n = 2; n <= limits.maxVertices; n++) {
        uint64_t n_masks = 1ull << (n * (n - 1) / 2);
        for (uint64_t mask = 0; mask < n_masks; mask++) {
            graph::Dag dag = graph::Dag::fromUpperBits(n, mask);
            if (dag.numEdges() > limits.maxEdges || !dag.isFullDag())
                continue;
            // Iterate labelings.
            int interior = n - 2;
            int combos = 1;
            for (int i = 0; i < interior; i++)
                combos *= 3;
            for (int c = 0; c < combos; c++) {
                std::vector<Op> ops(static_cast<size_t>(n));
                ops.front() = Op::Input;
                ops.back() = Op::Output;
                int rem = c;
                for (int i = 1; i <= interior; i++) {
                    ops[static_cast<size_t>(i)] =
                        interiorOps[static_cast<size_t>(rem % 3)];
                    rem /= 3;
                }
                CellSpec cell(dag, ops);
                bool dup = false;
                for (const auto &u : unique) {
                    std::vector<int> la, lb;
                    for (Op op : cell.ops)
                        la.push_back(opLabel(op));
                    for (Op op : u.ops)
                        lb.push_back(opLabel(op));
                    if (graph::isomorphic(cell.dag, la, u.dag, lb)) {
                        dup = true;
                        break;
                    }
                }
                if (!dup)
                    unique.push_back(std::move(cell));
            }
        }
    }
    return unique.size();
}

TEST(Enumerator, MatchesBruteForceUpTo4Vertices)
{
    SpaceLimits limits{4, 9};
    auto cells = enumerateCells(limits);
    EXPECT_EQ(cells.size(), bruteForceUniqueCount(limits));
}

TEST(Enumerator, MatchesBruteForceUpTo5Vertices)
{
    SpaceLimits limits{5, 9};
    auto cells = enumerateCells(limits);
    EXPECT_EQ(cells.size(), bruteForceUniqueCount(limits));
}

TEST(Enumerator, TwoVertexSpaceIsSingleCell)
{
    SpaceLimits limits{2, 9};
    auto cells = enumerateCells(limits);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].numVertices(), 2);
    EXPECT_EQ(cells[0].numEdges(), 1);
}

TEST(Enumerator, ThreeVertexSpaceHasFourCells)
{
    // in->op->out (3 ops) plus the same with the skip edge in->out;
    // in->out with a dangling op is pruned. With the skip edge:
    // 3 more. Total 6... but in+out direct with one interior needs the
    // interior connected: {in->op, op->out} and optionally in->out.
    SpaceLimits limits{3, 9};
    auto cells = enumerateCells(limits);
    EXPECT_EQ(cells.size(), 1u + 3u + 3u);
}

TEST(Enumerator, AllCellsValidAndUnique)
{
    SpaceLimits limits{5, 9};
    auto cells = enumerateCells(limits);
    std::unordered_set<Hash128> fps;
    for (const auto &c : cells) {
        EXPECT_TRUE(c.valid(limits));
        fps.insert(c.fingerprint());
    }
    EXPECT_EQ(fps.size(), cells.size());
}

TEST(Enumerator, DeterministicOrderAcrossRuns)
{
    SpaceLimits limits{5, 9};
    auto a = enumerateCells(limits, nullptr, 4);
    auto b = enumerateCells(limits, nullptr, 2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Enumerator, EdgeLimitPrunes)
{
    SpaceLimits tight{5, 4};
    SpaceLimits loose{5, 9};
    EXPECT_LT(enumerateCells(tight).size(),
              enumerateCells(loose).size());
}

TEST(Enumerator, StatsAreConsistent)
{
    SpaceLimits limits{5, 9};
    EnumerationStats stats;
    auto cells = enumerateCells(limits, &stats);
    EXPECT_EQ(stats.uniqueCells, cells.size());
    EXPECT_GE(stats.labeledCandidates, stats.uniqueCells);
    EXPECT_GE(stats.matricesVisited, stats.matricesKept);
}

// The headline fidelity check: the full NASBench-101 space contains
// exactly 423,624 unique cells (paper section 6 / NASBench-101).
TEST(Enumerator, FullSpaceHas423624UniqueCells)
{
    EnumerationStats stats;
    auto cells = enumerateCells({}, &stats);
    EXPECT_EQ(cells.size(), 423624u);
    EXPECT_EQ(stats.uniqueCells, 423624u);
}

} // namespace
