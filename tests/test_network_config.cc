/** @file Parameterized sweeps over the macro-architecture config. */

#include <gtest/gtest.h>

#include "nasbench/network.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;

class StemChannelSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StemChannelSweep, ParamsScaleRoughlyQuadratically)
{
    NetworkConfig cfg;
    cfg.stemChannels = GetParam();
    auto cell = makeChainCell({Op::Conv3x3, Op::Conv1x1});
    uint64_t params = countTrainableParams(cell, cfg);
    EXPECT_GT(params, 0u);

    NetworkConfig doubled = cfg;
    doubled.stemChannels = GetParam() * 2;
    uint64_t params2 = countTrainableParams(cell, doubled);
    double ratio = static_cast<double>(params2) /
                   static_cast<double>(params);
    // Conv params are quadratic in channels; stem/dense mildly linear.
    EXPECT_GT(ratio, 3.4);
    EXPECT_LT(ratio, 4.1);
}

TEST_P(StemChannelSweep, MacsScaleWithChannels)
{
    NetworkConfig cfg;
    cfg.stemChannels = GetParam();
    auto cell = makeChainCell({Op::Conv3x3});
    Network net = buildNetwork(cell, cfg);
    NetworkConfig doubled = cfg;
    doubled.stemChannels = GetParam() * 2;
    Network net2 = buildNetwork(cell, doubled);
    EXPECT_GT(net2.totalMacs(), 3 * net.totalMacs());
}

INSTANTIATE_TEST_SUITE_P(Channels, StemChannelSweep,
                         ::testing::Values(16, 32, 64, 128));

class StackSweep : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(StackSweep, LayerCountMatchesStructure)
{
    auto [stacks, cells_per_stack] = GetParam();
    NetworkConfig cfg;
    cfg.numStacks = stacks;
    cfg.cellsPerStack = cells_per_stack;
    // Image must survive (stacks-1) halvings.
    cfg.imageSize = 1 << (stacks + 2);
    auto cell = makeChainCell({Op::Conv3x3});
    Network net = buildNetwork(cell, cfg);

    // Per chain cell: projection + conv = 2 layers, one concat = 3.
    int cell_layers = 3;
    int expected = 1 + stacks * cells_per_stack * cell_layers +
                   (stacks - 1) + 2;
    EXPECT_EQ(static_cast<int>(net.layers.size()), expected);

    // The dense head sees stemChannels << (stacks-1) features.
    EXPECT_EQ(net.layers.back().cin, cfg.stemChannels << (stacks - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StackSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{3, 3},
                      std::pair{2, 5}));

TEST(NetworkConfigTest, ClassCountChangesOnlyDenseLayer)
{
    auto cell = makeChainCell({Op::MaxPool3x3});
    NetworkConfig ten;
    NetworkConfig hundred;
    hundred.numClasses = 100;
    uint64_t p10 = countTrainableParams(cell, ten);
    uint64_t p100 = countTrainableParams(cell, hundred);
    // Delta = 90 * (512 weights + 1 bias).
    EXPECT_EQ(p100 - p10, 90u * (512u + 1u));
}

TEST(NetworkConfigTest, ImageSizeChangesMacsNotParams)
{
    auto cell = makeChainCell({Op::Conv3x3});
    NetworkConfig small;
    small.imageSize = 16;
    NetworkConfig big;
    big.imageSize = 64;
    EXPECT_EQ(countTrainableParams(cell, small),
              countTrainableParams(cell, big));
    EXPECT_GT(buildNetwork(cell, big).totalMacs(),
              10 * buildNetwork(cell, small).totalMacs());
}

TEST(NetworkConfigTest, AllCellsShareSpecButDifferInChannels)
{
    // Stack 1 cells run at 128 channels, stack 3 at 512: the conv
    // layers for the same vertex must differ in width across stacks.
    auto cell = makeChainCell({Op::Conv3x3});
    Network net = buildNetwork(cell);
    int widths[9] = {};
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::Conv && l.cellIndex >= 0)
            widths[l.cellIndex] = l.cout;
    }
    EXPECT_EQ(widths[0], 128);
    EXPECT_EQ(widths[4], 256);
    EXPECT_EQ(widths[8], 512);
}

} // namespace
