/** @file Unit tests for strfmt and the status helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

using etpu::strfmt;

TEST(Strfmt, ConcatenatesHeterogeneousValues)
{
    EXPECT_EQ(strfmt("a", 1, "b", 2.5), "a1b2.5");
}

TEST(Strfmt, EmptyProducesEmptyString)
{
    EXPECT_EQ(strfmt(), "");
}

TEST(Strfmt, HandlesBoolAndChar)
{
    EXPECT_EQ(strfmt(true, '!', 0), "1!0");
}

TEST(Strfmt, LongStringsAreNotTruncated)
{
    std::string big(10000, 'x');
    EXPECT_EQ(strfmt(big, "y").size(), 10001u);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH({ etpu_panic("boom ", 42); }, "boom 42");
}

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT({ etpu_fatal("bad input"); },
                ::testing::ExitedWithCode(1), "bad input");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    etpu_warn("this is only a warning");
    etpu_inform("status message");
    SUCCEED();
}

} // namespace
