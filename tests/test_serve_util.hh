/**
 * @file
 * Shared scaffolding for the serve-stack test suites (test_serve,
 * test_client): a synthetic on-disk dataset, an in-process daemon
 * wrapper and a bare line-oriented protocol client. Header-only so
 * each suite binary stays self-contained.
 */

#ifndef ETPU_TESTS_TEST_SERVE_UTIL_HH
#define ETPU_TESTS_TEST_SERVE_UTIL_HH

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "common/signal.hh"
#include "common/socket.hh"
#include "nasbench/dataset.hh"
#include "serve/json.hh"
#include "serve/server.hh"
#include "test_io_util.hh"

namespace etpu::test
{

/** One line-oriented protocol client. */
struct LineClient
{
    SocketFd fd;
    std::string carry;

    explicit LineClient(uint16_t port) : fd(connectTcp(port)) {}

    bool ok() const { return fd.valid(); }

    bool send(std::string line)
    {
        line += "\n";
        return writeAll(fd.get(), line);
    }

    std::optional<std::string> recv()
    {
        std::string line;
        if (readLine(fd.get(), carry, line, 1 << 20) != LineRead::Ok)
            return std::nullopt;
        return line;
    }

    /** recv + strict-parse; fails the test on malformed JSON. */
    std::optional<serve::JsonValue> recvJson()
    {
        auto line = recv();
        if (!line)
            return std::nullopt;
        std::string error;
        auto doc = serve::parseJson(*line, &error);
        EXPECT_TRUE(doc.has_value()) << *line << ": " << error;
        return doc;
    }
};

/** An in-process daemon over the shared synthetic dataset. */
class TestServer
{
  public:
    explicit TestServer(serve::ServerOptions opts)
        : server_(configure(std::move(opts)))
    {
        // The shutdown flag is process-global; clear any previous
        // test's stop before this run() starts.
        resetShutdownSignals();
        started_ = server_.start();
        EXPECT_TRUE(started_);
        if (started_)
            runThread_ = std::thread([this] { server_.run(); });
    }

    ~TestServer() { stop(); }

    void stop()
    {
        if (runThread_.joinable()) {
            server_.requestStop();
            runThread_.join();
        }
    }

    uint16_t port() const { return server_.port(); }
    const serve::ServerCounters &counters() const
    {
        return server_.counters();
    }

    static std::string datasetPath()
    {
        static const std::string path = [] {
            nas::Dataset ds;
            for (int i = 0; i < 24; i++) {
                nas::ModelRecord r;
                r.spec = nas::makeChainCell({nas::Op::Conv3x3});
                r.accuracy = 0.5f + 0.02f * static_cast<float>(i);
                r.params = 1000u + 100u * static_cast<uint64_t>(i);
                r.depth = static_cast<uint8_t>(2 + i % 5);
                r.width = 1;
                r.numConv3x3 = 1;
                r.latencyMs = {1.0f + static_cast<float>(i),
                               2.0f + static_cast<float>(i % 3),
                               3.0f};
                r.energyMj = {1.0f, 2.0f, 3.0f};
                ds.records.push_back(r);
            }
            // One row with NaN accuracy: the JSON emitters must render
            // it as null, and every query op must survive it.
            ds.records[0].accuracy =
                std::numeric_limits<float>::quiet_NaN();
            std::string p = tmpPath("serve_e2e_dataset.bin");
            ds.save(p);
            return p;
        }();
        return path;
    }

  private:
    static serve::ServerOptions configure(serve::ServerOptions opts)
    {
        if (opts.engine.datasetPath.empty())
            opts.engine.datasetPath = datasetPath();
        return opts;
    }

    serve::Server server_;
    bool started_ = false;
    std::thread runThread_;
};

/** Two workers, defaults otherwise. */
inline serve::ServerOptions
smallServerOptions()
{
    serve::ServerOptions opts;
    opts.workers = 2;
    return opts;
}

} // namespace etpu::test

#endif // ETPU_TESTS_TEST_SERVE_UTIL_HH
