/** @file Unit tests for the surrogate accuracy model. */

#include <gtest/gtest.h>

#include "nasbench/accuracy.hh"
#include "nasbench/enumerator.hh"
#include "nasbench/network.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;

TEST(Accuracy, AnchorsPinnedToPublishedValues)
{
    const auto &anchors = anchorCells();
    ASSERT_GE(anchors.size(), 7u);
    EXPECT_DOUBLE_EQ(surrogateAccuracy(anchors[0].cell), 0.95055);
    EXPECT_DOUBLE_EQ(surrogateAccuracy(anchors[1].cell), 0.94895);
    for (const auto &a : anchors)
        EXPECT_DOUBLE_EQ(surrogateAccuracy(a.cell), a.accuracy);
}

TEST(Accuracy, AnchorsAreValidCells)
{
    for (const auto &a : anchorCells())
        EXPECT_TRUE(a.cell.valid()) << a.name;
}

TEST(Accuracy, AnchorOpCountsMatchFigures)
{
    const auto &anchors = anchorCells();
    EXPECT_EQ(anchors[0].cell.opCount(Op::Conv3x3), 4);  // Figure 7a
    EXPECT_EQ(anchors[0].cell.opCount(Op::Conv1x1), 0);
    EXPECT_EQ(anchors[1].cell.opCount(Op::Conv1x1), 2);  // Figure 8a
    EXPECT_EQ(anchors[1].cell.opCount(Op::Conv3x3), 2);
}

TEST(Accuracy, BestAnchorIsGlobalMaximum)
{
    // No non-anchor cell may exceed the surrogate cap, which itself is
    // below the best anchor's 95.055%.
    EXPECT_LT(surrogateAccuracyCap, 0.95055);
    auto cells = enumerateCells({5, 9});
    for (const auto &c : cells)
        EXPECT_LE(surrogateAccuracy(c), 0.95055);
}

TEST(Accuracy, Deterministic)
{
    auto cell = makeChainCell({Op::Conv3x3, Op::Conv1x1});
    EXPECT_DOUBLE_EQ(surrogateAccuracy(cell), surrogateAccuracy(cell));
}

TEST(Accuracy, WithinRange)
{
    auto cells = enumerateCells({5, 9});
    for (const auto &c : cells) {
        double a = surrogateAccuracy(c);
        EXPECT_GE(a, 0.05);
        EXPECT_LE(a, 0.95055);
    }
}

TEST(Accuracy, MostModelsAboveSeventyPercent)
{
    // The paper keeps 98.5% of models with accuracy >= 70%.
    auto cells = enumerateCells({6, 9});
    size_t above = 0;
    for (const auto &c : cells) {
        if (surrogateAccuracy(c) >= 0.70)
            above++;
    }
    double frac =
        static_cast<double>(above) / static_cast<double>(cells.size());
    EXPECT_GT(frac, 0.95);
    EXPECT_LT(frac, 1.0); // the failed-training cluster exists
}

TEST(Accuracy, FailureClusterNearChanceLevel)
{
    auto cells = enumerateCells({6, 9});
    size_t failures = 0;
    for (const auto &c : cells) {
        double a = surrogateAccuracy(c);
        if (a < 0.2) {
            failures++;
            EXPECT_GT(a, 0.07);
            EXPECT_LT(a, 0.11);
        }
    }
    EXPECT_GT(failures, 0u);
}

TEST(Accuracy, ParamsOverloadMatches)
{
    auto cell = makeChainCell({Op::Conv3x3});
    uint64_t params = countTrainableParams(cell);
    EXPECT_DOUBLE_EQ(surrogateAccuracy(cell),
                     surrogateAccuracy(cell, params));
}

TEST(Accuracy, MoreCapacityHelpsOnAverage)
{
    // Average accuracy of 4-conv3x3 cells exceeds that of 4-maxpool
    // cells (capacity + conv3x3 terms).
    auto big = makeChainCell(
        {Op::Conv3x3, Op::Conv3x3, Op::Conv3x3, Op::Conv3x3});
    auto small = makeChainCell({Op::MaxPool3x3, Op::MaxPool3x3,
                                Op::MaxPool3x3, Op::MaxPool3x3});
    // Both could be failure outliers; pick non-outliers by checking.
    double ab = surrogateAccuracy(big);
    double as = surrogateAccuracy(small);
    if (ab > 0.2 && as > 0.2) {
        EXPECT_GT(ab, as);
    }
}

} // namespace
