/**
 * @file
 * Compile-time sanitizer budgeting for training-heavy tests.
 *
 * ThreadSanitizer costs ~10-20x on the GNN training loops, which
 * pushes the multi-minute convergence tests past any reasonable ctest
 * timeout. The TSan leg exists to find data races, and a training
 * loop races (or doesn't) identically at 6 epochs and at 60 — so
 * under TSan the heavy tests divide their epoch counts by
 * trainingEpochDivisor and skip the convergence-quality assertions
 * (checkConvergence), which the uninstrumented and ASan legs keep
 * enforcing at full strength.
 */

#ifndef ETPU_TESTS_SANITIZER_BUDGET_HH
#define ETPU_TESTS_SANITIZER_BUDGET_HH

#if defined(__SANITIZE_THREAD__)
#define ETPU_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ETPU_TSAN_ACTIVE 1
#endif
#endif
#ifndef ETPU_TSAN_ACTIVE
#define ETPU_TSAN_ACTIVE 0
#endif

namespace etpu::testutil
{

inline constexpr int trainingEpochDivisor = ETPU_TSAN_ACTIVE ? 10 : 1;
inline constexpr bool checkConvergence = trainingEpochDivisor == 1;

/** @p epochs scaled to the sanitizer budget, never below 1. */
constexpr int
scaledEpochs(int epochs)
{
    int scaled = epochs / trainingEpochDivisor;
    return scaled > 0 ? scaled : 1;
}

} // namespace etpu::testutil

#endif // ETPU_TESTS_SANITIZER_BUDGET_HH
