/**
 * @file
 * End-to-end pins for the design-space search (src/search/):
 *
 *  - the headline acceptance pin: on the move-closed 2,532-cell
 *    maxVertices=5 sub-space, a seeded search spending <= 10% of the
 *    exhaustive simulation budget recovers >= 80% of the true 2D
 *    latency/energy Pareto front (bench/bench_search.cc reports the
 *    same metric across budgets);
 *  - the determinism contract: identical seeds produce identical
 *    fronts and stats at 1 and 8 threads, for both optimizers and
 *    both backends (CI additionally cmp's etpu_search's JSON bytes);
 *  - budget accounting, pool containment and the learned-backend
 *    surrogate-filter flow.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gnn/predictor.hh"
#include "nasbench/enumerator.hh"
#include "search/search.hh"
#include "test_io_util.hh"

using namespace etpu;
using namespace etpu::search;

namespace
{

const std::vector<nas::CellSpec> &
pool5()
{
    static const std::vector<nas::CellSpec> cells = [] {
        nas::SpaceLimits limits;
        limits.maxVertices = 5;
        return nas::enumerateCells(limits);
    }();
    return cells;
}

const std::vector<nas::CellSpec> &
pool4()
{
    static const std::vector<nas::CellSpec> cells = [] {
        nas::SpaceLimits limits;
        limits.maxVertices = 4;
        return nas::enumerateCells(limits);
    }();
    return cells;
}

nas::SpaceLimits
limitsFor(int max_vertices)
{
    nas::SpaceLimits limits;
    limits.maxVertices = max_vertices;
    return limits;
}

std::vector<Objective>
latencyEnergy()
{
    return {{Metric::Latency, false}, {Metric::Energy, false}};
}

void
expectSameResult(const SearchResult &a, const SearchResult &b)
{
    ASSERT_EQ(a.front.size(), b.front.size());
    for (size_t i = 0; i < a.front.size(); i++) {
        EXPECT_EQ(a.front[i].cell, b.front[i].cell) << "slot " << i;
        // Bitwise: the contract is byte-identical artifacts.
        EXPECT_EQ(a.front[i].x, b.front[i].x) << "slot " << i;
        EXPECT_EQ(a.front[i].y, b.front[i].y) << "slot " << i;
    }
    EXPECT_EQ(a.stats.simEvals, b.stats.simEvals);
    EXPECT_EQ(a.stats.surrogatePredictions,
              b.stats.surrogatePredictions);
    EXPECT_EQ(a.stats.proposals, b.stats.proposals);
    EXPECT_EQ(a.stats.invalidMoves, b.stats.invalidMoves);
    EXPECT_EQ(a.stats.offPool, b.stats.offPool);
    EXPECT_EQ(a.stats.restarts, b.stats.restarts);
    EXPECT_EQ(a.stats.memoHits, b.stats.memoHits);
    EXPECT_EQ(a.stats.verified, b.stats.verified);
    EXPECT_EQ(a.stats.generations, b.stats.generations);
}

/** A tiny randomly initialized predictor bundle (latency+energy@V1):
 *  the surrogate-filter flow does not require an accurate model. */
std::string
syntheticCheckpoint()
{
    static const std::string path = [] {
        gnn::CheckpointBundle bundle;
        for (auto metric :
             {gnn::TargetMetric::Latency, gnn::TargetMetric::Energy}) {
            Rng rng(metric == gnn::TargetMetric::Latency ? 11u : 22u);
            gnn::ModelConfig cfg;
            cfg.latent = 8;
            cfg.messagePassingSteps = 1;
            gnn::Predictor p;
            p.name = gnn::modelName(metric, 0);
            p.model.init(cfg, rng);
            p.targetMean = 0.5;
            p.targetStd = 0.25;
            bundle.models.push_back(std::move(p));
        }
        std::string out = test::tmpPath("etpu_test_search_gnn.ckpt");
        EXPECT_TRUE(gnn::saveCheckpoint(out, bundle));
        return out;
    }();
    return path;
}

} // namespace

// The acceptance pin: <= 10% of the exhaustive budget, >= 80% of the
// true latency/energy front. (On this space the true front is tiny —
// latency and energy are strongly correlated — so the pin means the
// search must locate the jointly optimal cells, not merely sample.)
TEST(Search, RecoversFrontAtTenPercentBudget)
{
    auto truth = exhaustiveFront(pool5(), latencyEnergy(), 0);
    ASSERT_FALSE(truth.empty());

    SearchSpace space = makePoolSpace(pool5(), limitsFor(5));
    SearchOptions opts;
    opts.seed = 1;
    opts.budget = pool5().size() / 10; // 253 of 2,532
    opts.objectives = latencyEnergy();
    SearchResult res = runSearch(space, opts);

    EXPECT_LE(res.stats.simEvals, opts.budget);
    EXPECT_GE(frontRecovery(res.front, truth), 0.8)
        << "front size " << res.front.size() << " vs true "
        << truth.size();
}

TEST(Search, EvolutionRecoversFrontAtTenPercentBudget)
{
    auto truth = exhaustiveFront(pool5(), latencyEnergy(), 0);
    SearchSpace space = makePoolSpace(pool5(), limitsFor(5));
    SearchOptions opts;
    opts.seed = 1;
    opts.budget = pool5().size() / 10;
    opts.algo = Algo::Evolution;
    opts.objectives = latencyEnergy();
    SearchResult res = runSearch(space, opts);
    EXPECT_LE(res.stats.simEvals, opts.budget);
    EXPECT_GE(frontRecovery(res.front, truth), 0.8);
}

TEST(Search, ThreadCountNeverChangesTheResult)
{
    SearchSpace space = makePoolSpace(pool4(), limitsFor(4));
    for (Algo algo : {Algo::Annealing, Algo::Evolution}) {
        SearchOptions opts;
        opts.seed = 42;
        opts.budget = 40;
        opts.algo = algo;
        opts.objectives = latencyEnergy();
        opts.threads = 1;
        SearchResult one = runSearch(space, opts);
        opts.threads = 8;
        SearchResult eight = runSearch(space, opts);
        SCOPED_TRACE(algoName(algo));
        expectSameResult(one, eight);
        EXPECT_FALSE(one.front.empty());
    }
}

TEST(Search, PoolModeOnlyEverReportsPoolCells)
{
    SearchSpace space = makePoolSpace(pool4(), limitsFor(4));
    SearchOptions opts;
    opts.seed = 3;
    opts.budget = 60;
    opts.objectives = {{Metric::Latency, false},
                       {Metric::Accuracy, true}};
    SearchResult res = runSearch(space, opts);
    ASSERT_FALSE(res.front.empty());
    for (const FrontCell &f : res.front) {
        EXPECT_TRUE(space.poolIndex.contains(f.cell.fingerprint()));
    }
}

TEST(Search, OpenSpaceSearchStaysWithinLimits)
{
    nas::SpaceLimits limits = limitsFor(5);
    SearchSpace space = makeOpenSpace(limits);
    SearchOptions opts;
    opts.seed = 9;
    opts.budget = 48;
    opts.objectives = latencyEnergy();
    SearchResult res = runSearch(space, opts);
    ASSERT_FALSE(res.front.empty());
    EXPECT_LE(res.stats.simEvals, opts.budget);
    for (const FrontCell &f : res.front)
        EXPECT_TRUE(f.cell.valid(limits));
}

// The learned backend runs the surrogate-filter flow — predictions
// navigate, only would-improve candidates spend simulations — and
// must honor the same budget and determinism contracts even with a
// checkpoint whose predictions are garbage.
TEST(Search, LearnedBackendFiltersAndStaysDeterministic)
{
    SearchSpace space = makePoolSpace(pool4(), limitsFor(4));
    SearchOptions opts;
    opts.seed = 7;
    opts.budget = 32;
    opts.backend = BackendKind::Learned;
    opts.modelPath = syntheticCheckpoint();
    opts.objectives = latencyEnergy();
    opts.threads = 1;
    SearchResult one = runSearch(space, opts);
    EXPECT_FALSE(one.front.empty());
    EXPECT_LE(one.stats.simEvals, opts.budget);
    EXPECT_GT(one.stats.surrogatePredictions, 0u);
    // Every sim eval the filter admitted after seeding is counted.
    EXPECT_LE(one.stats.verified, one.stats.simEvals);
    opts.threads = 8;
    SearchResult eight = runSearch(space, opts);
    expectSameResult(one, eight);
}

TEST(Search, FrontRecoveryEdgeCases)
{
    std::vector<FrontCell> truth;
    std::vector<FrontCell> found;
    EXPECT_EQ(frontRecovery(found, truth), 1.0); // empty truth

    truth.push_back({pool4()[0], 1.0, 2.0});
    truth.push_back({pool4()[1], 2.0, 1.0});
    EXPECT_EQ(frontRecovery(found, truth), 0.0);
    found.push_back({pool4()[0], 1.0, 2.0});
    EXPECT_EQ(frontRecovery(found, truth), 0.5);
    found.push_back({pool4()[1], 2.0, 1.0});
    EXPECT_EQ(frontRecovery(found, truth), 1.0);
}

TEST(Search, BudgetIsAHardCap)
{
    SearchSpace space = makePoolSpace(pool4(), limitsFor(4));
    for (uint64_t budget : {1ull, 7ull, 33ull}) {
        SearchOptions opts;
        opts.seed = 5;
        opts.budget = budget;
        opts.objectives = latencyEnergy();
        SearchResult res = runSearch(space, opts);
        EXPECT_LE(res.stats.simEvals, budget);
    }
}
