/**
 * @file
 * Tests for the retrying ServeClient: id injection and correlation,
 * the retryable-vs-final outcome split, backoff-and-retry on
 * "overloaded"/"shutting_down", reconnection after transport
 * failures, and deadline-bounded calls — each driven either against
 * the real in-process daemon (test_serve_util.hh) or a scripted
 * one-socket server that misbehaves on demand.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "client/serve_client.hh"
#include "common/logging.hh"
#include "common/socket.hh"
#include "serve/json.hh"
#include "test_serve_util.hh"

namespace
{

using namespace etpu;
using namespace etpu::client;
using etpu::test::TestServer;
using etpu::test::smallServerOptions;

/** Fast-retry options against @p port (tests shouldn't sleep long). */
ClientOptions
fastOptions(uint16_t port)
{
    ClientOptions opts;
    opts.port = port;
    opts.backoffBaseMs = 1;
    opts.backoffMaxMs = 5;
    opts.callTimeoutMs = 5000;
    return opts;
}

/**
 * A scripted single-threaded server: accepts connections in sequence
 * and answers each received line via the supplied script, which
 * returns the raw bytes to send (empty = close the connection
 * instead). One connection is served until it errors or the script
 * closes it; then the next accept.
 */
class ScriptedServer
{
  public:
    explicit ScriptedServer(
        std::function<std::string(uint64_t turn, const std::string &)>
            script)
        : script_(std::move(script))
    {
        listen_ = listenTcp(0, port_);
        EXPECT_TRUE(listen_.valid());
        thread_ = std::thread([this] { loop(); });
    }

    ~ScriptedServer()
    {
        stopping_.store(true);
        // Unblock a blocked accept by connecting once.
        connectTcp(port_);
        thread_.join();
    }

    uint16_t port() const { return port_; }

  private:
    void loop()
    {
        uint64_t turn = 0;
        while (!stopping_.load()) {
            SocketFd conn = acceptTcp(listen_.get());
            if (stopping_.load() || !conn.valid())
                continue;
            std::string carry, line;
            for (;;) {
                if (readLineDeadline(conn.get(), carry, line, 1 << 20,
                                     5000) != LineRead::Ok) {
                    break;
                }
                std::string reply = script_(turn++, line);
                if (reply.empty())
                    break; // script says: hang up
                if (!writeAll(conn.get(), reply))
                    break;
            }
        }
    }

    std::function<std::string(uint64_t, const std::string &)> script_;
    SocketFd listen_;
    uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

// ---------------------------------------------------------------------
// Against the real daemon

TEST(ServeClient, OkCallRoundTripsWithInjectedId)
{
    TestServer server(smallServerOptions());
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"ping"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    // The injected id is echoed (first call of this client: id 1).
    auto doc = serve::parseJson(r.line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->find("id")->number, 1.0);
    EXPECT_EQ(cli.counters().requests, 1u);
    EXPECT_EQ(cli.counters().retries, 0u);
    EXPECT_EQ(cli.counters().reconnects, 1u);

    // Query ops flow through unchanged.
    r = cli.call(R"({"op":"count","filter":"accuracy>=0.6"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    doc = serve::parseJson(r.line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_GT(doc->find("count")->number, 0.0);
    EXPECT_DOUBLE_EQ(doc->find("id")->number, 2.0);
}

TEST(ServeClient, DeterministicErrorsAreFinalNotRetried)
{
    TestServer server(smallServerOptions());
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"levitate"})");
    ASSERT_TRUE(r.answered);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, "bad_request");
    // One attempt: retrying a malformed request cannot fix it.
    EXPECT_EQ(cli.counters().attempts, 1u);
    EXPECT_EQ(cli.counters().retries, 0u);
    EXPECT_EQ(cli.counters().failures, 0u);

    // An empty object still gets a valid id injection (no dangling
    // comma) — the server rejects it for the missing op, not for
    // JSON syntax.
    r = cli.call("{}");
    ASSERT_TRUE(r.answered);
    EXPECT_EQ(r.code, "bad_request");
    auto doc = serve::parseJson(r.line);
    ASSERT_TRUE(doc.has_value()) << r.line;
}

TEST(ServeClient, StatsOpThroughTheClient)
{
    TestServer server(smallServerOptions());
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"stats"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    auto doc = serve::parseJson(r.line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(doc->find("degraded")->boolean);
}

// ---------------------------------------------------------------------
// Against the scripted server (deterministic misbehavior)

TEST(ServeClient, RetriesOverloadedUntilServed)
{
    // Turns 0 and 1 answer "overloaded"; turn 2 succeeds. The client
    // injects sequential ids starting at 1, so the script can echo
    // them back by turn number.
    ScriptedServer server([](uint64_t turn, const std::string &) {
        if (turn < 2) {
            return strfmt("{\"id\":", turn + 1,
                          ",\"status\":\"error\",\"code\":"
                          "\"overloaded\",\"error\":\"full\"}\n");
        }
        return strfmt("{\"id\":", turn + 1, ",\"status\":\"ok\"}\n");
    });
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"ping"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(cli.counters().attempts, 3u);
    EXPECT_EQ(cli.counters().retries, 2u);
    EXPECT_EQ(cli.counters().overloaded, 2u);
    EXPECT_EQ(cli.counters().reconnects, 1u); // connection stayed good
}

TEST(ServeClient, GivesUpAfterMaxAttemptsOfOverload)
{
    ScriptedServer server([](uint64_t turn, const std::string &) {
        return strfmt("{\"id\":", turn + 1,
                      ",\"status\":\"error\",\"code\":"
                      "\"shutting_down\",\"error\":\"bye\"}\n");
    });
    ClientOptions opts = fastOptions(server.port());
    opts.maxAttempts = 3;
    ServeClient cli(opts);
    CallResult r = cli.call(R"({"op":"ping"})");
    EXPECT_FALSE(r.answered);
    EXPECT_NE(r.failure.find("shutting_down"), std::string::npos);
    EXPECT_EQ(cli.counters().attempts, 3u);
    EXPECT_EQ(cli.counters().shuttingDown, 3u);
    EXPECT_EQ(cli.counters().failures, 1u);
}

TEST(ServeClient, ReconnectsWhenTheServerHangsUp)
{
    // Turn 0: hang up without answering. Turn 1 (new connection,
    // id 2): answer ok.
    ScriptedServer server([](uint64_t turn, const std::string &) {
        if (turn == 0)
            return std::string();
        return strfmt("{\"id\":", turn + 1, ",\"status\":\"ok\"}\n");
    });
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"ping"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(cli.counters().retries, 1u);
    EXPECT_EQ(cli.counters().reconnects, 2u);
}

TEST(ServeClient, CorrelationMismatchResynchronizesByReconnect)
{
    // Turn 0 answers with a wrong id: the client cannot trust the
    // stream anymore, reconnects, and the retry (id 2) is answered
    // correctly.
    ScriptedServer server([](uint64_t turn, const std::string &) {
        if (turn == 0)
            return std::string(
                "{\"id\":999,\"status\":\"ok\"}\n");
        return strfmt("{\"id\":", turn + 1, ",\"status\":\"ok\"}\n");
    });
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call(R"({"op":"ping"})");
    ASSERT_TRUE(r.answered);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(cli.counters().retries, 1u);
    EXPECT_EQ(cli.counters().reconnects, 2u);
}

TEST(ServeClient, CallDeadlineBoundsASilentServer)
{
    // The server reads the request and never answers; each attempt
    // times out instead of blocking forever.
    ScriptedServer server([](uint64_t, const std::string &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return std::string();
    });
    ClientOptions opts = fastOptions(server.port());
    opts.callTimeoutMs = 100;
    opts.maxAttempts = 2;
    ServeClient cli(opts);
    auto t0 = std::chrono::steady_clock::now();
    CallResult r = cli.call(R"({"op":"ping"})");
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    EXPECT_FALSE(r.answered);
    EXPECT_GE(cli.counters().timeouts, 1u);
    EXPECT_EQ(cli.counters().failures, 1u);
    // Two attempts of ~100ms plus backoff, not 2x400ms server sleeps.
    EXPECT_LT(elapsed, 1500.0);
}

TEST(ServeClient, ConnectFailureExhaustsAttempts)
{
    // Bind-then-close yields a port that refuses connections.
    uint16_t dead_port = 0;
    {
        SocketFd listener = listenTcp(0, dead_port);
        ASSERT_TRUE(listener.valid());
    }
    ClientOptions opts = fastOptions(dead_port);
    opts.maxAttempts = 2;
    opts.connectTimeoutMs = 200;
    ServeClient cli(opts);
    CallResult r = cli.call(R"({"op":"ping"})");
    EXPECT_FALSE(r.answered);
    EXPECT_NE(r.failure.find("cannot connect"), std::string::npos);
    EXPECT_EQ(cli.counters().attempts, 2u);
    EXPECT_EQ(cli.counters().failures, 1u);
    EXPECT_FALSE(cli.connected());
}

TEST(ServeClient, NonObjectRequestFailsFast)
{
    ScriptedServer server([](uint64_t, const std::string &) {
        return std::string("{\"status\":\"ok\"}\n");
    });
    ServeClient cli(fastOptions(server.port()));
    CallResult r = cli.call("not json");
    EXPECT_FALSE(r.answered);
    EXPECT_NE(r.failure.find("not a JSON object"), std::string::npos);
}

} // namespace
