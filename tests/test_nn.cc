/** @file Gradient checks for the NN building blocks. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/nn.hh"

namespace
{

using namespace etpu;
using namespace etpu::gnn;

Matrix
randomMatrix(int r, int c, Rng &rng)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(rng.normal());
    return m;
}

/** Scalar loss used by gradient checks: sum of squares / 2. */
double
loss(const Matrix &y)
{
    double s = 0;
    for (float v : y.data())
        s += 0.5 * v * v;
    return s;
}

Matrix
lossGrad(const Matrix &y)
{
    return y; // d(sum y^2/2)/dy = y
}

TEST(Dense, ForwardMatchesManual)
{
    DenseLayer d;
    d.initZero(2, 2);
    d.w.at(0, 0) = 1;
    d.w.at(0, 1) = 2;
    d.w.at(1, 0) = 3;
    d.w.at(1, 1) = 4;
    d.b.at(0, 0) = 10;
    d.b.at(0, 1) = 20;
    Matrix x(1, 2);
    x.at(0, 0) = 1;
    x.at(0, 1) = 1;
    Matrix y = denseForward(d, x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 14);
    EXPECT_FLOAT_EQ(y.at(0, 1), 26);
}

TEST(Dense, InitStatistics)
{
    Rng rng(3);
    DenseLayer d;
    d.init(64, 64, rng);
    double sum = 0, sq = 0;
    for (float v : d.w.data()) {
        sum += v;
        sq += v * v;
    }
    double n = static_cast<double>(d.w.data().size());
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    // stddev ~ 1/sqrt(64) = 0.125 (slightly less after truncation).
    EXPECT_NEAR(std::sqrt(sq / n), 0.118, 0.02);
    for (float v : d.b.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Dense, GradientCheck)
{
    Rng rng(1);
    DenseLayer d;
    d.init(4, 3, rng);
    Matrix x = randomMatrix(5, 4, rng);

    DenseLayer grad;
    grad.initZero(4, 3);
    Matrix y = denseForward(d, x);
    Matrix dx = denseBackward(d, x, lossGrad(y), grad);

    double eps = 1e-3;
    // Check weight gradient entries.
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 3; j++) {
            float orig = d.w.at(i, j);
            d.w.at(i, j) = orig + static_cast<float>(eps);
            double lp = loss(denseForward(d, x));
            d.w.at(i, j) = orig - static_cast<float>(eps);
            double lm = loss(denseForward(d, x));
            d.w.at(i, j) = orig;
            EXPECT_NEAR(grad.w.at(i, j), (lp - lm) / (2 * eps), 2e-2);
        }
    }
    // Check input gradient entries.
    for (int i = 0; i < 5; i++) {
        for (int j = 0; j < 4; j++) {
            float orig = x.at(i, j);
            x.at(i, j) = orig + static_cast<float>(eps);
            double lp = loss(denseForward(d, x));
            x.at(i, j) = orig - static_cast<float>(eps);
            double lm = loss(denseForward(d, x));
            x.at(i, j) = orig;
            EXPECT_NEAR(dx.at(i, j), (lp - lm) / (2 * eps), 2e-2);
        }
    }
}

TEST(LayerNorm, NormalizesRows)
{
    LayerNorm ln;
    ln.init(8);
    Rng rng(2);
    Matrix x = randomMatrix(4, 8, rng);
    LayerNormCache cache;
    Matrix y = layerNormForward(ln, x, cache);
    for (int r = 0; r < y.rows(); r++) {
        double mean = 0, var = 0;
        for (int c = 0; c < 8; c++)
            mean += y.at(r, c);
        mean /= 8;
        for (int c = 0; c < 8; c++)
            var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
        var /= 8;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LayerNorm, ScaleAndOffsetApplied)
{
    LayerNorm ln;
    ln.init(4);
    ln.gamma.at(0, 2) = 3.0f;
    ln.beta.at(0, 1) = -1.0f;
    Rng rng(4);
    Matrix x = randomMatrix(1, 4, rng);
    LayerNormCache cache;
    Matrix y = layerNormForward(ln, x, cache);
    EXPECT_NEAR(y.at(0, 2), cache.xhat.at(0, 2) * 3.0f, 1e-5);
    EXPECT_NEAR(y.at(0, 1), cache.xhat.at(0, 1) - 1.0f, 1e-5);
}

TEST(LayerNorm, GradientCheck)
{
    LayerNorm ln;
    ln.init(6);
    Rng rng(5);
    for (auto &v : ln.gamma.data())
        v = static_cast<float>(1.0 + 0.1 * rng.normal());
    Matrix x = randomMatrix(3, 6, rng);

    LayerNorm grad;
    grad.initZero(6);
    LayerNormCache cache;
    Matrix y = layerNormForward(ln, x, cache);
    Matrix dx = layerNormBackward(ln, cache, lossGrad(y), grad);

    double eps = 1e-3;
    auto numeric = [&](float &slot) {
        float orig = slot;
        slot = orig + static_cast<float>(eps);
        LayerNormCache c2;
        double lp = loss(layerNormForward(ln, x, c2));
        slot = orig - static_cast<float>(eps);
        double lm = loss(layerNormForward(ln, x, c2));
        slot = orig;
        return (lp - lm) / (2 * eps);
    };
    for (int c = 0; c < 6; c++) {
        EXPECT_NEAR(grad.gamma.at(0, c), numeric(ln.gamma.at(0, c)),
                    3e-2);
        EXPECT_NEAR(grad.beta.at(0, c), numeric(ln.beta.at(0, c)), 3e-2);
    }
    for (int r = 0; r < 3; r++) {
        for (int c = 0; c < 6; c++)
            EXPECT_NEAR(dx.at(r, c), numeric(x.at(r, c)), 3e-2);
    }
}

TEST(Mlp, OutputShapeIsHiddenWidth)
{
    Rng rng(6);
    Mlp mlp;
    mlp.init(5, 16, rng);
    Matrix x = randomMatrix(7, 5, rng);
    MlpCache cache;
    Matrix y = mlpForward(mlp, x, cache);
    EXPECT_EQ(y.rows(), 7);
    EXPECT_EQ(y.cols(), 16);
}

TEST(Mlp, ReluGateZeroesNegativePaths)
{
    Rng rng(7);
    Mlp mlp;
    mlp.init(3, 8, rng);
    Matrix x = randomMatrix(2, 3, rng);
    MlpCache cache;
    mlpForward(mlp, x, cache);
    for (int r = 0; r < 2; r++) {
        for (int c = 0; c < 8; c++) {
            if (cache.h1.at(r, c) <= 0.0f) {
                EXPECT_FLOAT_EQ(cache.h1r.at(r, c), 0.0f);
            } else {
                EXPECT_FLOAT_EQ(cache.h1r.at(r, c), cache.h1.at(r, c));
            }
        }
    }
}

TEST(Mlp, DirectionalGradientCheck)
{
    Rng rng(8);
    Mlp mlp;
    mlp.init(4, 8, rng);
    Matrix x = randomMatrix(6, 4, rng);

    Mlp grad;
    grad.initZero(4, 8);
    MlpCache cache;
    Matrix y = mlpForward(mlp, x, cache);
    double l0 = loss(y);
    mlpBackward(mlp, cache, lossGrad(y), grad);

    // Step along -grad; the loss must drop by eps * |grad|^2.
    double gnorm2 = 0;
    std::vector<Matrix *> pm, gm;
    forEachMatrix(mlp, [&](Matrix &m) { pm.push_back(&m); });
    forEachMatrix(grad, [&](Matrix &m) { gm.push_back(&m); });
    for (auto *g : gm) {
        for (float v : g->data())
            gnorm2 += static_cast<double>(v) * v;
    }
    ASSERT_GT(gnorm2, 0.0);
    double alpha = 1e-4 / std::sqrt(gnorm2);
    for (size_t i = 0; i < pm.size(); i++) {
        for (size_t k = 0; k < pm[i]->data().size(); k++)
            pm[i]->data()[k] -=
                static_cast<float>(alpha * gm[i]->data()[k]);
    }
    MlpCache c2;
    double l1 = loss(mlpForward(mlp, x, c2));
    double expected = -alpha * gnorm2;
    EXPECT_NEAR((l1 - l0) / expected, 1.0, 0.05);
}

} // namespace
