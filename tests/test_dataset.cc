/** @file Unit tests for the dataset container and its serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/serialize.hh"
#include "nasbench/dataset.hh"
#include "test_io_util.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;
using namespace etpu::test;

// v2 layout constants the corruption tests navigate by (see
// dataset.hh): 24-byte header, 20 bytes of guards per shard segment.
constexpr size_t headerBytes = 24;
constexpr size_t guardBytes = 20;

ModelRecord
makeRecord(int n_interior, float accuracy)
{
    ModelRecord r;
    std::vector<Op> interior(static_cast<size_t>(n_interior),
                             Op::Conv3x3);
    r.spec = makeChainCell(interior);
    r.params = 1000u * static_cast<uint64_t>(n_interior + 1);
    r.macs = r.params * 100;
    r.weightBytes = r.params;
    r.accuracy = accuracy;
    r.depth = static_cast<uint8_t>(r.spec.depth());
    r.width = static_cast<uint8_t>(r.spec.width());
    r.numConv3x3 = static_cast<uint8_t>(n_interior);
    for (int c = 0; c < numAccelerators; c++) {
        r.latencyMs[static_cast<size_t>(c)] = 0.1f * (c + 1);
        r.energyMj[static_cast<size_t>(c)] = 0.2f * (c + 1);
    }
    return r;
}

Dataset
makeDataset(size_t n)
{
    Dataset ds;
    for (size_t i = 0; i < n; i++) {
        ds.records.push_back(makeRecord(1 + static_cast<int>(i % 4),
                                        0.5f + 0.1f * (i % 5)));
    }
    return ds;
}

uint64_t
u64At(const std::string &bytes, size_t offset)
{
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + offset, sizeof(v));
    return v;
}

/** Byte offset of shard @p shard's segment in v2 file @p bytes. */
size_t
segmentOffset(const std::string &bytes, size_t shard)
{
    size_t off = headerBytes;
    for (size_t s = 0; s < shard; s++)
        off += guardBytes + u64At(bytes, off);
    return off;
}

void
expectRecordsEqual(const ModelRecord &a, const ModelRecord &b)
{
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.weightBytes, b.weightBytes);
    EXPECT_FLOAT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.numConv3x3, b.numConv3x3);
    EXPECT_EQ(a.numConv1x1, b.numConv1x1);
    EXPECT_EQ(a.numMaxPool, b.numMaxPool);
    EXPECT_EQ(a.latencyMs, b.latencyMs);
    EXPECT_EQ(a.energyMj, b.energyMj);
}

TEST(Dataset, SaveLoadRoundTrip)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.8f));
    ds.records.push_back(makeRecord(3, 0.9f));
    std::string path = tmpPath("etpu_ds_rt.bin");
    ds.save(path);

    Dataset loaded;
    ASSERT_TRUE(Dataset::load(path, loaded));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.records[0].spec, ds.records[0].spec);
    EXPECT_EQ(loaded.records[1].params, ds.records[1].params);
    EXPECT_EQ(loaded.records[1].macs, ds.records[1].macs);
    EXPECT_FLOAT_EQ(loaded.records[0].accuracy, 0.8f);
    EXPECT_FLOAT_EQ(loaded.records[1].latencyMs[2], 0.3f);
    EXPECT_FLOAT_EQ(loaded.records[1].energyMj[0], 0.2f);
    EXPECT_EQ(loaded.records[1].numConv3x3, 3);
    std::remove(path.c_str());
}

TEST(Dataset, MultiShardRoundTripPreservesOrder)
{
    Dataset ds = makeDataset(11);
    std::string path = tmpPath("etpu_ds_multishard.bin");
    ds.save(path, 4); // 11 records -> shards of 3/3/3/2

    Dataset loaded;
    ASSERT_TRUE(Dataset::load(path, loaded));
    ASSERT_EQ(loaded.size(), ds.size());
    for (size_t i = 0; i < ds.size(); i++)
        expectRecordsEqual(loaded.records[i], ds.records[i]);
    std::remove(path.c_str());
}

TEST(Dataset, EmptyDatasetRoundTrip)
{
    Dataset ds;
    std::string path = tmpPath("etpu_ds_empty.bin");
    ds.save(path);
    Dataset loaded;
    loaded.records.push_back(makeRecord(1, 0.5f));
    ASSERT_TRUE(Dataset::load(path, loaded));
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(Dataset, DefaultShardCount)
{
    EXPECT_EQ(defaultShardCount(0), 1u);
    EXPECT_EQ(defaultShardCount(1), 1u);
    EXPECT_EQ(defaultShardCount(cacheShardTargetRecords), 1u);
    EXPECT_EQ(defaultShardCount(cacheShardTargetRecords + 1), 2u);
    EXPECT_EQ(defaultShardCount(423624), 7u);
}

TEST(Dataset, ShardRangeCoversEveryRecordOnce)
{
    for (size_t total : {0u, 1u, 7u, 11u, 100u}) {
        for (size_t shards : {1u, 2u, 3u, 7u}) {
            size_t expect_begin = 0;
            for (size_t s = 0; s < shards; s++) {
                auto [begin, end] = shardRange(total, shards, s);
                EXPECT_EQ(begin, expect_begin)
                    << total << "/" << shards << "/" << s;
                EXPECT_GE(end, begin);
                // Balanced: shard sizes differ by at most one.
                EXPECT_LE(end - begin, total / shards + 1);
                expect_begin = end;
            }
            EXPECT_EQ(expect_begin, total) << total << "/" << shards;
        }
    }
}

TEST(Dataset, LegacyV1CacheStillLoadsWithWarning)
{
    Dataset ds = makeDataset(5);
    std::string path = tmpPath("etpu_ds_v1.bin");
    {
        // The exact byte stream the pre-v2 binary wrote.
        BinaryWriter w(path);
        w.write<uint64_t>(0x45545055445330ull); // "ETPUDS0"
        w.write<uint32_t>(3u);
        w.write<uint64_t>(ds.records.size());
        for (const auto &r : ds.records)
            appendRecord(w, r);
    }
    Dataset loaded;
    testing::internal::CaptureStderr();
    ASSERT_TRUE(Dataset::load(path, loaded));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("legacy v1"), std::string::npos) << log;
    ASSERT_EQ(loaded.size(), ds.size());
    for (size_t i = 0; i < ds.size(); i++)
        expectRecordsEqual(loaded.records[i], ds.records[i]);
    std::remove(path.c_str());
}

TEST(Dataset, LegacyV1TruncationRejected)
{
    Dataset ds = makeDataset(3);
    std::string path = tmpPath("etpu_ds_v1_trunc.bin");
    {
        BinaryWriter w(path);
        w.write<uint64_t>(0x45545055445330ull);
        w.write<uint32_t>(3u);
        w.write<uint64_t>(ds.records.size());
        for (const auto &r : ds.records)
            appendRecord(w, r);
    }
    std::string whole = readFile(path);
    writeFile(path, whole.substr(0, whole.size() - 10));
    Dataset loaded;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(Dataset::load(path, loaded));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("truncated or corrupt in record 2"),
              std::string::npos)
        << log;
    std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileFails)
{
    Dataset ds;
    EXPECT_FALSE(Dataset::load("/nonexistent/ds.bin", ds));
}

TEST(Dataset, LoadRejectsGarbage)
{
    std::string path = tmpPath("etpu_ds_garbage.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a dataset at all, definitely";
    }
    Dataset ds;
    EXPECT_FALSE(Dataset::load(path, ds));
    std::remove(path.c_str());
}

// Truncate the v2 cache at EVERY byte (which includes every field
// boundary of the header, the shard guards and the record fields) and
// confirm the load fails cleanly each time instead of dying or
// returning a partial dataset.
TEST(Dataset, TruncationAtEveryByteRejected)
{
    Dataset ds = makeDataset(6);
    std::string path = tmpPath("etpu_ds_trunc_all.bin");
    ds.save(path, 2);
    std::string whole = readFile(path);
    ASSERT_GT(whole.size(), headerBytes);

    std::string cut_path = tmpPath("etpu_ds_trunc_all_cut.bin");
    testing::internal::CaptureStderr(); // silence the warning flood
    for (size_t cut = 0; cut < whole.size(); cut++) {
        writeFile(cut_path, whole.substr(0, cut));
        Dataset loaded;
        loaded.records.push_back(makeRecord(1, 0.5f));
        EXPECT_FALSE(Dataset::load(cut_path, loaded)) << "cut " << cut;
        EXPECT_TRUE(loaded.records.empty()) << "cut " << cut;
    }
    testing::internal::GetCapturedStderr();
    std::remove(cut_path.c_str());
    std::remove(path.c_str());
}

TEST(Dataset, TrailingGarbageRejectedWithOffset)
{
    Dataset ds = makeDataset(4);
    std::string path = tmpPath("etpu_ds_trailing.bin");
    ds.save(path, 2);
    std::string whole = readFile(path);
    writeFile(path, whole + "junk");

    Dataset loaded;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(Dataset::load(path, loaded));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("trailing garbage after byte " +
                       std::to_string(whole.size())),
              std::string::npos)
        << log;
    std::remove(path.c_str());
}

TEST(Dataset, FlippedPayloadByteFailsLoadWithCrcMismatch)
{
    Dataset ds = makeDataset(12);
    std::string path = tmpPath("etpu_ds_flip.bin");
    ds.save(path, 4); // 3 records per shard
    std::string whole = readFile(path);

    // Flip one byte inside shard 1's payload.
    size_t shard1 = segmentOffset(whole, 1);
    std::string bad = whole;
    bad[shard1 + guardBytes + 5] ^= 0x40;
    writeFile(path, bad);

    Dataset loaded;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(Dataset::load(path, loaded));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("shard 1 CRC mismatch"), std::string::npos)
        << log;
    EXPECT_TRUE(loaded.records.empty());
    std::remove(path.c_str());
}

TEST(Dataset, StreamingSkipsBadShardButDeliversTheRest)
{
    Dataset ds = makeDataset(12);
    std::string path = tmpPath("etpu_ds_stream_skip.bin");
    ds.save(path, 4);
    std::string whole = readFile(path);

    size_t shard2 = segmentOffset(whole, 2);
    std::string bad = whole;
    bad[shard2 + guardBytes] ^= 0x01;
    writeFile(path, bad);

    std::vector<ModelRecord> streamed;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(Dataset::loadStreaming(
        path, [&](const ModelRecord &r) { streamed.push_back(r); }));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("shard 2 CRC mismatch"), std::string::npos)
        << log;

    // Shards 0, 1 and 3 (3 records each) still stream, in order.
    ASSERT_EQ(streamed.size(), 9u);
    for (size_t i = 0; i < 6; i++)
        expectRecordsEqual(streamed[i], ds.records[i]);
    for (size_t i = 6; i < 9; i++)
        expectRecordsEqual(streamed[i], ds.records[i + 3]);
    std::remove(path.c_str());
}

TEST(Dataset, StreamingCleanFileDeliversEverythingInOrder)
{
    Dataset ds = makeDataset(10);
    std::string path = tmpPath("etpu_ds_stream.bin");
    ds.save(path, 3);

    std::vector<ModelRecord> streamed;
    EXPECT_TRUE(Dataset::loadStreaming(
        path, [&](const ModelRecord &r) { streamed.push_back(r); }));
    ASSERT_EQ(streamed.size(), ds.size());
    for (size_t i = 0; i < ds.size(); i++)
        expectRecordsEqual(streamed[i], ds.records[i]);
    std::remove(path.c_str());
}

TEST(Dataset, StreamingMissingFileFails)
{
    size_t calls = 0;
    EXPECT_FALSE(Dataset::loadStreaming(
        "/nonexistent/ds.bin",
        [&](const ModelRecord &) { calls++; }));
    EXPECT_EQ(calls, 0u);
}

TEST(Dataset, CorruptShardLengthFieldRejected)
{
    Dataset ds = makeDataset(6);
    std::string path = tmpPath("etpu_ds_badlen.bin");
    ds.save(path, 2);
    std::string whole = readFile(path);

    // Claim an absurd payload length for shard 0.
    std::string bad = whole;
    uint64_t huge = ~0ull;
    std::memcpy(bad.data() + headerBytes, &huge, sizeof(huge));
    writeFile(path, bad);

    Dataset loaded;
    testing::internal::CaptureStderr();
    EXPECT_FALSE(Dataset::load(path, loaded));
    std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("payload"), std::string::npos) << log;
    std::remove(path.c_str());
}

TEST(Dataset, FilterByAccuracy)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.5f));
    ds.records.push_back(makeRecord(2, 0.7f));
    ds.records.push_back(makeRecord(3, 0.9f));
    auto kept = ds.filterByAccuracy(0.7);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_FLOAT_EQ(kept[0]->accuracy, 0.7f);
    EXPECT_FLOAT_EQ(kept[1]->accuracy, 0.9f);
}

TEST(Dataset, BestAccuracyIndex)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.5f));
    ds.records.push_back(makeRecord(2, 0.95f));
    ds.records.push_back(makeRecord(3, 0.9f));
    EXPECT_EQ(ds.bestAccuracyIndex(), 1u);
}

TEST(Dataset, BestAccuracyOnEmptyPanics)
{
    Dataset ds;
    EXPECT_DEATH(ds.bestAccuracyIndex(), "empty");
}

} // namespace
