/** @file Unit tests for the dataset container and its serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nasbench/dataset.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;

ModelRecord
makeRecord(int n_interior, float accuracy)
{
    ModelRecord r;
    std::vector<Op> interior(static_cast<size_t>(n_interior),
                             Op::Conv3x3);
    r.spec = makeChainCell(interior);
    r.params = 1000u * static_cast<uint64_t>(n_interior + 1);
    r.macs = r.params * 100;
    r.weightBytes = r.params;
    r.accuracy = accuracy;
    r.depth = static_cast<uint8_t>(r.spec.depth());
    r.width = static_cast<uint8_t>(r.spec.width());
    r.numConv3x3 = static_cast<uint8_t>(n_interior);
    for (int c = 0; c < numAccelerators; c++) {
        r.latencyMs[static_cast<size_t>(c)] = 0.1f * (c + 1);
        r.energyMj[static_cast<size_t>(c)] = 0.2f * (c + 1);
    }
    return r;
}

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Dataset, SaveLoadRoundTrip)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.8f));
    ds.records.push_back(makeRecord(3, 0.9f));
    std::string path = tmpPath("etpu_ds_rt.bin");
    ds.save(path);

    Dataset loaded;
    ASSERT_TRUE(Dataset::load(path, loaded));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.records[0].spec, ds.records[0].spec);
    EXPECT_EQ(loaded.records[1].params, ds.records[1].params);
    EXPECT_EQ(loaded.records[1].macs, ds.records[1].macs);
    EXPECT_FLOAT_EQ(loaded.records[0].accuracy, 0.8f);
    EXPECT_FLOAT_EQ(loaded.records[1].latencyMs[2], 0.3f);
    EXPECT_FLOAT_EQ(loaded.records[1].energyMj[0], 0.2f);
    EXPECT_EQ(loaded.records[1].numConv3x3, 3);
    std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileFails)
{
    Dataset ds;
    EXPECT_FALSE(Dataset::load("/nonexistent/ds.bin", ds));
}

TEST(Dataset, LoadRejectsGarbage)
{
    std::string path = tmpPath("etpu_ds_garbage.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a dataset at all, definitely";
    }
    Dataset ds;
    EXPECT_FALSE(Dataset::load(path, ds));
    std::remove(path.c_str());
}

TEST(Dataset, FilterByAccuracy)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.5f));
    ds.records.push_back(makeRecord(2, 0.7f));
    ds.records.push_back(makeRecord(3, 0.9f));
    auto kept = ds.filterByAccuracy(0.7);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_FLOAT_EQ(kept[0]->accuracy, 0.7f);
    EXPECT_FLOAT_EQ(kept[1]->accuracy, 0.9f);
}

TEST(Dataset, BestAccuracyIndex)
{
    Dataset ds;
    ds.records.push_back(makeRecord(1, 0.5f));
    ds.records.push_back(makeRecord(2, 0.95f));
    ds.records.push_back(makeRecord(3, 0.9f));
    EXPECT_EQ(ds.bestAccuracyIndex(), 1u);
}

TEST(Dataset, BestAccuracyOnEmptyPanics)
{
    Dataset ds;
    EXPECT_DEATH(ds.bestAccuracyIndex(), "empty");
}

} // namespace
