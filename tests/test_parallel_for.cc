/** @file Unit tests for the chunked parallel-for. */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include "common/parallel_for.hh"

namespace
{

using namespace etpu;

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(10000);
    parallelFor(0, hits.size(), [&](size_t i, unsigned) {
        hits[i].fetch_add(1);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset)
{
    std::atomic<uint64_t> sum{0};
    parallelFor(100, 200, [&](size_t i, unsigned) { sum += i; });
    uint64_t expected = 0;
    for (size_t i = 100; i < 200; i++)
        expected += i;
    EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    int calls = 0;
    parallelFor(5, 5, [&](size_t, unsigned) { calls++; });
    parallelFor(7, 3, [&](size_t, unsigned) { calls++; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleThreadFallback)
{
    std::vector<int> order;
    parallelFor(0, 50, [&](size_t i, unsigned w) {
        EXPECT_EQ(w, 0u);
        order.push_back(static_cast<int>(i));
    }, 1);
    // Sequential execution preserves order.
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, WorkerIdsWithinBounds)
{
    std::atomic<bool> bad{false};
    parallelFor(0, 10000, [&](size_t, unsigned w) {
        if (w >= 8)
            bad = true;
    }, 8);
    EXPECT_FALSE(bad.load());
}

TEST(ParallelFor, MoreThreadsThanWork)
{
    std::atomic<int> count{0};
    parallelFor(0, 3, [&](size_t, unsigned) { count++; }, 16);
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, RangeEndingAtSizeMaxDoesNotWrap)
{
    // The shared claim cursor must be clamped to end: a blind
    // cursor += chunk with end == SIZE_MAX wraps to a small value,
    // reopening the range so indices run a second time (and the
    // workers never terminate in the worst case).
    constexpr size_t n = 4096;
    constexpr size_t end = std::numeric_limits<size_t>::max();
    constexpr size_t begin = end - n;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(begin, end, [&](size_t i, unsigned) {
        ASSERT_GE(i, begin);
        ASSERT_LT(i, end);
        hits[i - begin].fetch_add(1);
    }, 8);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RangeEndingAtSizeMaxSingleWorker)
{
    constexpr size_t end = std::numeric_limits<size_t>::max();
    std::atomic<int> count{0};
    parallelFor(end - 17, end, [&](size_t, unsigned) { count++; }, 1);
    EXPECT_EQ(count.load(), 17);
}

TEST(DefaultThreadCount, Positive)
{
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ResolveWorkerCount, SmallRequestsPassThrough)
{
    EXPECT_GE(resolveWorkerCount(0), 1u);
    EXPECT_EQ(resolveWorkerCount(3), 3u);
}

TEST(ResolveWorkerCount, CapsAbsurdRequests)
{
    // A huge --threads/ETPU_THREADS must not translate into millions
    // of spawned threads or per-worker shard allocations.
    EXPECT_LT(resolveWorkerCount(1u << 30), 100000u);
}

} // namespace
