/** @file Property tests: the WL fingerprint vs exact isomorphism. */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "graph/wl_hash.hh"

namespace
{

using namespace etpu;
using namespace etpu::graph;

/** Permute interior vertices of (dag, labels) by perm (identity on 0
 *  and n-1), producing a relabeled upper-triangular graph when the
 *  permutation preserves topological order feasibility. */
struct Labeled
{
    Dag dag;
    std::vector<int> labels;
};

Labeled
randomGraph(Rng &rng, int n)
{
    Dag d(n);
    for (int u = 0; u < n; u++) {
        for (int v = u + 1; v < n; v++) {
            if (rng.uniform() < 0.4)
                d.addEdge(u, v);
        }
    }
    std::vector<int> labels(n);
    labels[0] = 0;
    labels[n - 1] = 4;
    for (int v = 1; v < n - 1; v++)
        labels[v] = 1 + static_cast<int>(rng.uniformInt(3));
    return {d, labels};
}

/** Apply an interior permutation; edges that would become backward are
 *  re-oriented to stay upper-triangular, which preserves isomorphism
 *  as an (un)directed relabeling only when we map a DAG onto a DAG.
 *  To stay exact, we instead permute only via topological-order
 *  preserving swaps: swap two interior vertices with no edge between
 *  them and identical neighbor-direction feasibility. Simpler: build
 *  the permuted graph and skip if any edge becomes backward. */
bool
permute(const Labeled &in, const std::vector<int> &perm, Labeled &out)
{
    int n = in.dag.numVertices();
    Dag d(n);
    for (auto [u, v] : in.dag.edges()) {
        int pu = perm[u], pv = perm[v];
        if (pu > pv)
            return false; // would break the topological indexing
        d.addEdge(pu, pv);
    }
    std::vector<int> labels(n);
    for (int v = 0; v < n; v++)
        labels[perm[v]] = in.labels[v];
    out = {d, labels};
    return true;
}

TEST(WlHash, DeterministicForSameGraph)
{
    Rng rng(1);
    auto g = randomGraph(rng, 6);
    EXPECT_EQ(wlFingerprint(g.dag, g.labels),
              wlFingerprint(g.dag, g.labels));
}

TEST(WlHash, LabelChangeChangesFingerprint)
{
    Rng rng(2);
    auto g = randomGraph(rng, 6);
    auto labels2 = g.labels;
    labels2[2] = labels2[2] == 1 ? 2 : 1;
    EXPECT_NE(wlFingerprint(g.dag, g.labels),
              wlFingerprint(g.dag, labels2));
}

TEST(WlHash, EdgeChangeChangesFingerprint)
{
    Dag a(4), b(4);
    a.addEdge(0, 1);
    a.addEdge(1, 2);
    a.addEdge(2, 3);
    b.addEdge(0, 1);
    b.addEdge(1, 3);
    b.addEdge(1, 2);
    std::vector<int> labels = {0, 1, 1, 4};
    EXPECT_NE(wlFingerprint(a, labels), wlFingerprint(b, labels));
}

TEST(WlHash, InvariantUnderInteriorPermutation)
{
    Rng rng(3);
    int tested = 0;
    for (int trial = 0; trial < 400 && tested < 120; trial++) {
        int n = 4 + static_cast<int>(rng.uniformInt(4)); // 4..7
        auto g = randomGraph(rng, n);
        std::vector<int> perm(n);
        std::iota(perm.begin(), perm.end(), 0);
        // random interior permutation
        for (int i = n - 2; i > 1; i--) {
            int j = 1 + static_cast<int>(rng.uniformInt(i));
            std::swap(perm[i], perm[j]);
        }
        Labeled h;
        if (!permute(g, perm, h))
            continue;
        tested++;
        EXPECT_EQ(wlFingerprint(g.dag, g.labels),
                  wlFingerprint(h.dag, h.labels))
            << "graph " << g.dag.str();
    }
    EXPECT_GE(tested, 50);
}

TEST(WlHash, AgreesWithExactIsomorphismOnRandomPairs)
{
    Rng rng(4);
    int mismatches = 0;
    for (int trial = 0; trial < 300; trial++) {
        int n = 4 + static_cast<int>(rng.uniformInt(3)); // 4..6
        auto a = randomGraph(rng, n);
        auto b = randomGraph(rng, n);
        bool same_fp = wlFingerprint(a.dag, a.labels) ==
                       wlFingerprint(b.dag, b.labels);
        bool iso = isomorphic(a.dag, a.labels, b.dag, b.labels);
        if (same_fp != iso)
            mismatches++;
    }
    // The WL refinement is exact on these tiny labeled DAGs.
    EXPECT_EQ(mismatches, 0);
}

TEST(ExactIso, IdenticalGraphsAreIsomorphic)
{
    Rng rng(5);
    auto g = randomGraph(rng, 6);
    EXPECT_TRUE(isomorphic(g.dag, g.labels, g.dag, g.labels));
}

TEST(ExactIso, DifferentSizesAreNot)
{
    Dag a(3), b(4);
    a.addEdge(0, 1);
    a.addEdge(1, 2);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 3);
    EXPECT_FALSE(isomorphic(a, {0, 1, 4}, b, {0, 1, 1, 4}));
}

TEST(ExactIso, DetectsInteriorRelabeling)
{
    // in -> A -> B -> out vs in -> B -> A -> out with A != B labels.
    Dag d(4);
    d.addEdge(0, 1);
    d.addEdge(1, 2);
    d.addEdge(2, 3);
    EXPECT_FALSE(isomorphic(d, {0, 1, 2, 4}, d, {0, 2, 1, 4}));
    // But a parallel-branch graph is symmetric under branch swap.
    Dag p(4);
    p.addEdge(0, 1);
    p.addEdge(0, 2);
    p.addEdge(1, 3);
    p.addEdge(2, 3);
    EXPECT_TRUE(isomorphic(p, {0, 1, 2, 4}, p, {0, 2, 1, 4}));
}

} // namespace
