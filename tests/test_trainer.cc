/** @file Tests for the training/evaluation harness. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gnn/trainer.hh"
#include "nasbench/enumerator.hh"
#include "sanitizer_budget.hh"

namespace
{

using namespace etpu;
using namespace etpu::gnn;
using nas::Op;

std::vector<Sample>
syntheticSamples(size_t count, uint64_t seed)
{
    auto cells = nas::enumerateCells({5, 9});
    Rng rng(seed);
    std::vector<Sample> samples;
    for (size_t i = 0; i < count; i++) {
        const auto &c = cells[rng.uniformInt(cells.size())];
        Sample s;
        s.graph = featurize(c);
        // A structural "latency" the GNN can learn.
        s.target = 0.2 + 0.5 * c.opCount(Op::Conv3x3) +
                   0.15 * c.depth() + 0.05 * c.numEdges();
        samples.push_back(std::move(s));
    }
    return samples;
}

TEST(Split, SixtyTwentyTwenty)
{
    auto split = splitDataset(1000, 1);
    EXPECT_EQ(split.train.size(), 600u);
    EXPECT_EQ(split.validation.size(), 200u);
    EXPECT_EQ(split.test.size(), 200u);
}

TEST(Split, CoversAllIndicesDisjointly)
{
    auto split = splitDataset(503, 2);
    std::vector<bool> seen(503, false);
    for (auto part : {&split.train, &split.validation, &split.test}) {
        for (size_t i : *part) {
            ASSERT_LT(i, 503u);
            EXPECT_FALSE(seen[i]);
            seen[i] = true;
        }
    }
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(Split, DeterministicBySeed)
{
    auto a = splitDataset(100, 7);
    auto b = splitDataset(100, 7);
    EXPECT_EQ(a.train, b.train);
    auto c = splitDataset(100, 8);
    EXPECT_NE(a.train, c.train);
}

TEST(Trainer, LossDecreasesDuringTraining)
{
    auto samples = syntheticSamples(64, 3);
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.threads = 4;
    Trainer t(cfg);
    double first = t.train(samples);
    TrainConfig cfg2;
    cfg2.epochs = testutil::scaledEpochs(40);
    cfg2.threads = 4;
    Trainer t2(cfg2);
    double later = t2.train(samples);
    EXPECT_LT(later, first);
}

TEST(Trainer, OverfitsSmallSet)
{
    auto samples = syntheticSamples(48, 4);
    TrainConfig cfg;
    // 48 samples / batch 16 -> 3 steps per epoch
    cfg.epochs = testutil::scaledEpochs(600);
    cfg.batchSize = 16;
    cfg.threads = 8;
    Trainer t(cfg);
    t.train(samples);
    EvalMetrics m = t.evaluate(samples);
    if (testutil::checkConvergence) {
        EXPECT_GT(m.avgAccuracy, 0.88);
        EXPECT_GT(m.spearman, 0.9);
        EXPECT_GT(m.pearson, 0.9);
    }
}

TEST(Trainer, PredictionDenormalizesToTargetScale)
{
    auto samples = syntheticSamples(48, 5);
    TrainConfig cfg;
    cfg.epochs = testutil::scaledEpochs(60);
    cfg.threads = 8;
    Trainer t(cfg);
    t.train(samples);
    double lo = 1e18, hi = -1e18;
    for (const auto &s : samples) {
        lo = std::min(lo, s.target);
        hi = std::max(hi, s.target);
    }
    double pred = t.predict(samples[0].graph);
    EXPECT_GT(pred, lo - (hi - lo));
    EXPECT_LT(pred, hi + (hi - lo));
}

TEST(Trainer, EvaluateOnEmptyIsZeroed)
{
    Trainer t;
    EvalMetrics m = t.evaluate({});
    EXPECT_EQ(m.count, 0u);
    EXPECT_DOUBLE_EQ(m.avgAccuracy, 0.0);
}

TEST(Trainer, DeterministicGivenSeedAndSingleThread)
{
    auto samples = syntheticSamples(32, 6);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.threads = 1;
    cfg.seed = 99;
    Trainer a(cfg), b(cfg);
    double la = a.train(samples);
    double lb = b.train(samples);
    EXPECT_DOUBLE_EQ(la, lb);
    EXPECT_DOUBLE_EQ(a.predict(samples[0].graph),
                     b.predict(samples[0].graph));
}

TEST(Trainer, TrainOnEmptyIsFatal)
{
    Trainer t;
    EXPECT_EXIT(t.train({}), ::testing::ExitedWithCode(1), "empty");
}

TEST(Trainer, SingleSampleTrainsWithDegenerateNormalization)
{
    // One sample has zero target variance; the std guard must keep
    // the normalization finite and training stable.
    auto samples = syntheticSamples(1, 9);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.threads = 1;
    Trainer t(cfg);
    double loss = t.train(samples);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_DOUBLE_EQ(t.targetStd(), 1.0);
    EXPECT_DOUBLE_EQ(t.targetMean(), samples[0].target);
    EXPECT_TRUE(std::isfinite(t.predict(samples[0].graph)));
}

TEST(Trainer, NonFiniteTargetsAreFatal)
{
    auto nan_samples = syntheticSamples(4, 10);
    nan_samples[2].target = std::nan("");
    TrainConfig cfg;
    cfg.threads = 1;
    Trainer t(cfg);
    EXPECT_EXIT(t.train(nan_samples), ::testing::ExitedWithCode(1),
                "non-finite target");

    auto inf_samples = syntheticSamples(4, 11);
    inf_samples[0].target = std::numeric_limits<double>::infinity();
    Trainer t2(cfg);
    EXPECT_EXIT(t2.train(inf_samples), ::testing::ExitedWithCode(1),
                "non-finite target");
}

TEST(Trainer, MakePredictorCarriesModelAndNormalization)
{
    auto samples = syntheticSamples(24, 12);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.threads = 1;
    Trainer t(cfg);
    t.train(samples);
    Predictor p = t.makePredictor("latency@V2");
    EXPECT_EQ(p.name, "latency@V2");
    EXPECT_DOUBLE_EQ(p.targetMean, t.targetMean());
    EXPECT_DOUBLE_EQ(p.targetStd, t.targetStd());
    for (const auto &s : samples)
        EXPECT_EQ(p.predict(s.graph), t.predict(s.graph));

    // evaluatePredictor must agree with Trainer::evaluate.
    EvalMetrics via_trainer = t.evaluate(samples);
    EvalMetrics via_predictor = evaluatePredictor(p, samples, 1);
    EXPECT_DOUBLE_EQ(via_predictor.avgAccuracy,
                     via_trainer.avgAccuracy);
    EXPECT_DOUBLE_EQ(via_predictor.spearman, via_trainer.spearman);
    EXPECT_DOUBLE_EQ(via_predictor.pearson, via_trainer.pearson);
    EXPECT_EQ(via_predictor.count, via_trainer.count);
}

} // namespace
