/** @file Unit tests for the Adam optimizer. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/adam.hh"

namespace
{

using namespace etpu;
using namespace etpu::gnn;

GraphNetModel
tinyModel(uint64_t seed = 1)
{
    Rng rng(seed);
    GraphNetModel m;
    ModelConfig cfg;
    cfg.latent = 4;
    cfg.messagePassingSteps = 1;
    m.init(cfg, rng);
    return m;
}

TEST(Adam, FirstStepMovesByLearningRate)
{
    GraphNetModel m = tinyModel();
    float before = m.output.w.at(0, 0);
    Adam opt(m, 1e-3);
    GraphNetModel grad = m.zeroClone();
    grad.output.w.at(0, 0) = 0.5f; // arbitrary non-zero gradient
    opt.step(grad);
    // Bias-corrected Adam's first update is ~lr * sign(grad).
    EXPECT_NEAR(m.output.w.at(0, 0), before - 1e-3f, 1e-5);
}

TEST(Adam, ZeroGradientLeavesParamsAlone)
{
    GraphNetModel m = tinyModel();
    std::vector<float> before;
    m.forEach([&](Matrix &mat) {
        before.insert(before.end(), mat.data().begin(),
                      mat.data().end());
    });
    Adam opt(m, 1e-3);
    GraphNetModel grad = m.zeroClone();
    opt.step(grad);
    std::vector<float> after;
    m.forEach([&](Matrix &mat) {
        after.insert(after.end(), mat.data().begin(), mat.data().end());
    });
    EXPECT_EQ(before, after);
}

TEST(Adam, IterationsCount)
{
    GraphNetModel m = tinyModel();
    Adam opt(m);
    GraphNetModel grad = m.zeroClone();
    EXPECT_EQ(opt.iterations(), 0);
    opt.step(grad);
    opt.step(grad);
    EXPECT_EQ(opt.iterations(), 2);
}

TEST(Adam, MinimizesQuadraticOnParameter)
{
    // Treat output.w[0,0] as the variable of f(x) = (x - 3)^2.
    GraphNetModel m = tinyModel();
    Adam opt(m, 0.05);
    for (int it = 0; it < 2000; it++) {
        GraphNetModel grad = m.zeroClone();
        float x = m.output.w.at(0, 0);
        grad.output.w.at(0, 0) = 2.0f * (x - 3.0f);
        opt.step(grad);
    }
    EXPECT_NEAR(m.output.w.at(0, 0), 3.0f, 1e-2);
}

TEST(Adam, DefaultLearningRateIsPaperValue)
{
    GraphNetModel m = tinyModel();
    Adam opt(m);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 1e-3);
}

} // namespace
