/** @file Property tests for the simulator's energy model. */

#include <gtest/gtest.h>

#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;
using namespace etpu::sim;
using nas::Op;

nas::CellSpec
bigCell()
{
    return nas::makeChainCell(
        {Op::Conv3x3, Op::Conv3x3, Op::Conv3x3, Op::Conv3x3,
         Op::Conv3x3});
}

class EnergyConfigTest
    : public ::testing::TestWithParam<arch::AcceleratorConfig>
{
};

TEST_P(EnergyConfigTest, RaisingDramCostRaisesStreamedModelEnergy)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg2 = cfg;
    cfg2.energy.pjPerDramByte *= 2.0;
    Simulator expensive(cfg2);
    auto cell = bigCell();
    EXPECT_GT(expensive.runCell(cell).energyMj,
              base.runCell(cell).energyMj);
}

TEST_P(EnergyConfigTest, RaisingStaticPowerRaisesEveryModelEnergy)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg2 = cfg;
    cfg2.energy.staticWatts += 1.0;
    Simulator hot(cfg2);
    for (const auto &cell :
         {nas::makeChainCell({Op::MaxPool3x3}), bigCell()}) {
        EXPECT_GT(hot.runCell(cell).energyMj,
                  base.runCell(cell).energyMj);
    }
}

TEST_P(EnergyConfigTest, RaisingMacCostRaisesComputeModelEnergy)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg2 = cfg;
    cfg2.energy.pjPerMac *= 3.0;
    Simulator heavy(cfg2);
    auto cell = bigCell();
    EXPECT_GT(heavy.runCell(cell).energyMj,
              base.runCell(cell).energyMj);
}

TEST_P(EnergyConfigTest, LatencyUnaffectedByEnergyCoefficients)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg2 = cfg;
    cfg2.energy.pjPerDramByte *= 5;
    cfg2.energy.staticWatts *= 2;
    cfg2.energy.pjPerMac *= 7;
    Simulator changed(cfg2);
    auto cell = bigCell();
    EXPECT_DOUBLE_EQ(base.runCell(cell).latencyMs,
                     changed.runCell(cell).latencyMs);
}

TEST_P(EnergyConfigTest, ImplicitPowerWithinPlausibleEdgeBudget)
{
    // Edge TPUs live in single-digit-watt envelopes; a calibrated
    // model should too, across model sizes.
    Simulator sim(GetParam());
    for (const auto &cell :
         {nas::makeChainCell({Op::Conv1x1}), bigCell()}) {
        PerfResult r = sim.runCell(cell);
        double watts = r.energyMj / r.latencyMs;
        EXPECT_GT(watts, 0.2);
        EXPECT_LT(watts, 10.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EnergyConfigTest,
    ::testing::ValuesIn(arch::allConfigs()),
    [](const ::testing::TestParamInfo<arch::AcceleratorConfig> &info) {
        return info.param.name;
    });

TEST(EnergyModel, CachingReducesEnergyOfStreamedModels)
{
    auto cfg = arch::configV1();
    Simulator cached(cfg);
    cfg.compiler.parameterCaching = false;
    Simulator uncached(cfg);
    auto cell = bigCell();
    EXPECT_LT(cached.runCell(cell).energyMj,
              uncached.runCell(cell).energyMj);
}

TEST(EnergyModel, V1StaticExceedsV2Static)
{
    // The larger-SRAM V1 die burns more static power; this drives the
    // Figure 6 low-latency ordering.
    EXPECT_GT(arch::configV1().energy.staticWatts,
              arch::configV2().energy.staticWatts);
}

TEST(EnergyModel, EnergyLatencyRatioGrowsWithModelSize)
{
    // Bigger models stream more DRAM bytes per unit time.
    Simulator sim(arch::configV2());
    PerfResult small = sim.runCell(nas::makeChainCell({Op::Conv1x1}));
    PerfResult large = sim.runCell(bigCell());
    EXPECT_GT(large.energyMj / large.latencyMs,
              small.energyMj / small.latencyMs);
}

} // namespace
