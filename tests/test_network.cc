/** @file Unit tests for channel inference, lowering and param counts. */

#include <gtest/gtest.h>

#include "nasbench/accuracy.hh"
#include "nasbench/network.hh"

namespace
{

using namespace etpu;
using namespace etpu::nas;

graph::Dag
dagFromEdges(int n, const std::vector<std::pair<int, int>> &edges)
{
    graph::Dag d(n);
    for (auto [u, v] : edges)
        d.addEdge(u, v);
    return d;
}

TEST(VertexChannels, TwoVertexPassThrough)
{
    auto ch = computeVertexChannels(128, 256,
                                    dagFromEdges(2, {{0, 1}}));
    EXPECT_EQ(ch, (std::vector<int>{128, 256}));
}

TEST(VertexChannels, SingleChainKeepsOutputChannels)
{
    auto ch = computeVertexChannels(
        128, 256, dagFromEdges(4, {{0, 1}, {1, 2}, {2, 3}}));
    EXPECT_EQ(ch, (std::vector<int>{128, 256, 256, 256}));
}

TEST(VertexChannels, SplitsAcrossOutputFanIn)
{
    // Two branches into the output: channels halve.
    auto ch = computeVertexChannels(
        128, 256,
        dagFromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
    EXPECT_EQ(ch, (std::vector<int>{128, 128, 128, 256}));
}

TEST(VertexChannels, RemainderGoesToEarliestBranches)
{
    // Three branches into output with 128 channels: 43+43+42.
    auto ch = computeVertexChannels(
        64, 128,
        dagFromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 4}}));
    EXPECT_EQ(ch, (std::vector<int>{64, 43, 43, 42, 128}));
}

TEST(VertexChannels, BackPropagatesMaxOverSuccessors)
{
    // v1 feeds only v2 and v3 (not output); takes max of their channels.
    auto ch = computeVertexChannels(
        64, 100,
        dagFromEdges(5, {{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}}));
    // v2, v3 split output: 50 each; v1 = max(50, 50) = 50.
    EXPECT_EQ(ch, (std::vector<int>{64, 50, 50, 50, 100}));
}

TEST(Network, StemParams)
{
    graph::Dag d(2);
    d.addEdge(0, 1);
    CellSpec cell(d, {Op::Input, Op::Output});
    Network net = buildNetwork(cell);
    ASSERT_FALSE(net.layers.empty());
    const Layer &stem = net.layers[0];
    EXPECT_EQ(stem.kind, LayerKind::Stem);
    // 3x3x3x128 conv + 2*128 batch-norm.
    EXPECT_EQ(stem.paramCount(), 3456u + 256u);
}

TEST(Network, IdentityCellNetworkParamsHandComputed)
{
    // Nine projection-only cells: hand-computed total 882,570 (see
    // DESIGN.md: per-stack projections + stem 3,712 + dense 5,130).
    graph::Dag d(2);
    d.addEdge(0, 1);
    CellSpec cell(d, {Op::Input, Op::Output});
    EXPECT_EQ(countTrainableParams(cell), 882570u);
}

TEST(Network, MaxPoolOnlyCellMatchesIdentityParams)
{
    // A maxpool op adds no parameters beyond the same projection.
    auto cell = makeChainCell({Op::MaxPool3x3});
    EXPECT_EQ(countTrainableParams(cell), 882570u);
}

TEST(Network, Fig7aCellMatchesPublishedParamCount)
{
    // The paper reports 41,557,898 trainable parameters for the
    // highest-accuracy model (Figure 7).
    const auto &anchors = anchorCells();
    EXPECT_EQ(countTrainableParams(anchors[0].cell), 41557898u);
}

TEST(Network, Fig8aCellMatchesPublishedParamCount)
{
    // The paper reports 25,042,826 for the second-best model (Figure 8).
    const auto &anchors = anchorCells();
    EXPECT_EQ(countTrainableParams(anchors[1].cell), 25042826u);
}

TEST(Network, LayerCountScalesWithCells)
{
    auto small = makeChainCell({Op::Conv3x3});
    auto big = makeChainCell(
        {Op::Conv3x3, Op::Conv3x3, Op::Conv3x3, Op::Conv3x3});
    EXPECT_LT(buildNetwork(small).layers.size(),
              buildNetwork(big).layers.size());
}

TEST(Network, DepsAreTopological)
{
    auto cell = makeChainCell({Op::Conv3x3, Op::Conv1x1});
    Network net = buildNetwork(cell);
    for (size_t i = 0; i < net.layers.size(); i++) {
        for (int32_t dep : net.layerDeps(i)) {
            EXPECT_GE(dep, 0);
            EXPECT_LT(dep, static_cast<int32_t>(i));
        }
    }
}

TEST(Network, SpatialDimsHalveAcrossStacks)
{
    auto cell = makeChainCell({Op::Conv3x3});
    Network net = buildNetwork(cell);
    int downsamples = 0;
    for (const auto &l : net.layers) {
        if (l.kind == LayerKind::Downsample) {
            downsamples++;
            EXPECT_EQ(l.outH, l.h / 2);
            EXPECT_EQ(l.outW, l.w / 2);
        }
    }
    EXPECT_EQ(downsamples, 2);
}

TEST(Network, FinalLayerIsDenseTenWay)
{
    auto cell = makeChainCell({Op::Conv1x1});
    Network net = buildNetwork(cell);
    const Layer &last = net.layers.back();
    EXPECT_EQ(last.kind, LayerKind::Dense);
    EXPECT_EQ(last.cout, 10);
    EXPECT_EQ(last.cin, 512);
    EXPECT_EQ(last.paramCount(), 512u * 10u + 10u);
}

TEST(Network, MacsAndBytesPositive)
{
    auto cell = makeChainCell({Op::Conv3x3, Op::MaxPool3x3});
    Network net = buildNetwork(cell);
    EXPECT_GT(net.totalMacs(), 0u);
    EXPECT_GT(net.totalVectorOps(), 0u);
    EXPECT_GT(net.totalWeightBytes(), 0u);
    // int8 deployment is within 20% of the float param count (BN folds).
    double ratio = static_cast<double>(net.totalWeightBytes()) /
                   static_cast<double>(net.trainableParams());
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

TEST(Network, Conv3x3HasNineTimesConv1x1Macs)
{
    auto c3 = makeChainCell({Op::Conv3x3});
    auto c1 = makeChainCell({Op::Conv1x1});
    Network n3 = buildNetwork(c3);
    Network n1 = buildNetwork(c1);
    // Projections and head identical; the vertex convs differ 9x.
    uint64_t diff3 = n3.totalMacs() - n1.totalMacs();
    // Find the conv vertex macs in n1.
    uint64_t conv1_macs = 0;
    for (const auto &l : n1.layers) {
        if (l.kind == LayerKind::Conv && l.kernel == 1 && l.vertex == 1)
            conv1_macs += l.macs();
    }
    EXPECT_EQ(diff3, conv1_macs * 8);
}

TEST(Network, WidthSplitReducesParams)
{
    // Parallel cells split channels, so wide cells have fewer params
    // than chains of the same op count (the Figure 13 phenomenon).
    auto chain = makeChainCell(
        {Op::Conv3x3, Op::Conv3x3, Op::Conv3x3, Op::Conv3x3});
    graph::Dag wide(6);
    for (int v = 1; v <= 4; v++) {
        wide.addEdge(0, v);
        wide.addEdge(v, 5);
    }
    CellSpec wide_cell(wide, {Op::Input, Op::Conv3x3, Op::Conv3x3,
                              Op::Conv3x3, Op::Conv3x3, Op::Output});
    EXPECT_LT(countTrainableParams(wide_cell),
              countTrainableParams(chain) / 2);
}

TEST(Network, InvalidCellPanics)
{
    graph::Dag d(3);
    d.addEdge(0, 2); // vertex 1 dangling
    CellSpec bad(d, {Op::Input, Op::Conv3x3, Op::Output});
    EXPECT_DEATH(buildNetwork(bad), "invalid cell");
}

TEST(Network, CustomConfigChangesParamCount)
{
    auto cell = makeChainCell({Op::Conv3x3});
    NetworkConfig half;
    half.stemChannels = 64;
    EXPECT_LT(countTrainableParams(cell, half),
              countTrainableParams(cell));
}

} // namespace
