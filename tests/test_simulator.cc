/** @file Property and behaviour tests for the performance simulator. */

#include <gtest/gtest.h>

#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;
using namespace etpu::sim;
using nas::Op;

nas::CellSpec
bigCell()
{
    return nas::makeChainCell(
        {Op::Conv3x3, Op::Conv3x3, Op::Conv3x3, Op::Conv3x3,
         Op::Conv3x3});
}

nas::CellSpec
smallCell()
{
    return nas::makeChainCell({Op::MaxPool3x3});
}

class SimulatorConfigTest
    : public ::testing::TestWithParam<arch::AcceleratorConfig>
{
};

TEST_P(SimulatorConfigTest, LatencyAndCyclesPositive)
{
    Simulator sim(GetParam());
    PerfResult r = sim.runCell(smallCell());
    EXPECT_GT(r.latencyMs, 0.0);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.numOps, 0);
}

TEST_P(SimulatorConfigTest, Deterministic)
{
    Simulator sim(GetParam());
    PerfResult a = sim.runCell(bigCell());
    PerfResult b = sim.runCell(bigCell());
    EXPECT_DOUBLE_EQ(a.latencyMs, b.latencyMs);
    EXPECT_DOUBLE_EQ(a.energyMj, b.energyMj);
}

TEST_P(SimulatorConfigTest, BiggerModelIsSlower)
{
    Simulator sim(GetParam());
    EXPECT_GT(sim.runCell(bigCell()).latencyMs,
              sim.runCell(smallCell()).latencyMs);
}

TEST_P(SimulatorConfigTest, CachingNeverHurts)
{
    auto cfg = GetParam();
    Simulator with(cfg);
    auto cfg_off = cfg;
    cfg_off.compiler.parameterCaching = false;
    Simulator without(cfg_off);
    for (const auto &cell : {smallCell(), bigCell()}) {
        EXPECT_LE(with.runCell(cell).latencyMs,
                  without.runCell(cell).latencyMs + 1e-9);
    }
}

TEST_P(SimulatorConfigTest, MoreBandwidthNeverHurtsBigModels)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg_fast = cfg;
    cfg_fast.ioBandwidthGBs *= 2.0;
    Simulator fast(cfg_fast);
    EXPECT_LE(fast.runCell(bigCell()).latencyMs,
              base.runCell(bigCell()).latencyMs + 1e-9);
}

TEST_P(SimulatorConfigTest, HigherClockIsFaster)
{
    auto cfg = GetParam();
    Simulator base(cfg);
    auto cfg_fast = cfg;
    cfg_fast.clockMhz *= 2.0;
    Simulator fast(cfg_fast);
    EXPECT_LT(fast.runCell(smallCell()).latencyMs,
              base.runCell(smallCell()).latencyMs);
}

TEST_P(SimulatorConfigTest, BusyTimesWithinLatency)
{
    Simulator sim(GetParam());
    PerfResult r = sim.runCell(bigCell());
    EXPECT_LE(r.computeBusyMs, r.latencyMs + 1e-9);
    EXPECT_LE(r.dmaBusyMs, r.latencyMs + 1e-9);
    EXPECT_GE(r.overheadMs, 0.0);
}

TEST_P(SimulatorConfigTest, UtilizationAtMostOne)
{
    Simulator sim(GetParam());
    PerfResult r = sim.runCell(bigCell());
    EXPECT_GT(r.utilization(sim.config()), 0.0);
    EXPECT_LE(r.utilization(sim.config()), 1.0);
}

TEST_P(SimulatorConfigTest, DramTrafficCoversStreamedWeights)
{
    Simulator sim(GetParam());
    Compiler compiler(GetParam());
    auto cell = bigCell();
    nas::Network net = nas::buildNetwork(cell);
    Program p = compiler.compile(net, &cell);
    uint64_t streamed = 0;
    for (const auto &op : p.ops)
        streamed += op.weightStreamBytes;
    PerfResult r = sim.run(p);
    EXPECT_GE(r.dramBytes, streamed);
}

TEST_P(SimulatorConfigTest, EnergyPositiveAndFlagged)
{
    Simulator sim(GetParam());
    PerfResult r = sim.runCell(smallCell());
    EXPECT_GT(r.energyMj, 0.0);
    EXPECT_EQ(r.energyAvailable, GetParam().energy.available);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SimulatorConfigTest,
    ::testing::ValuesIn(arch::allConfigs()),
    [](const ::testing::TestParamInfo<arch::AcceleratorConfig> &info) {
        return info.param.name;
    });

TEST(SimulatorFallback, PoolHeavyCellsSlowOnV1OnlyWithLowEnergy)
{
    // mp=3 > c1+1=2: triggers the V1 toolchain fallback; the conv1x1
    // vertex contributes host-side MACs.
    auto cell = nas::makeChainCell({Op::Conv1x1, Op::MaxPool3x3,
                                    Op::MaxPool3x3, Op::MaxPool3x3});
    Simulator v1(arch::configV1());
    Simulator v2(arch::configV2());
    Simulator v3(arch::configV3());
    PerfResult r1 = v1.runCell(cell);
    PerfResult r2 = v2.runCell(cell);
    PerfResult r3 = v3.runCell(cell);
    // Table 5, last bucket: V1 is several times slower; V2 and V3 are
    // comparable and fast.
    EXPECT_GT(r1.latencyMs, 3.0 * r2.latencyMs);
    EXPECT_LT(r3.latencyMs, r2.latencyMs * 1.15);
    EXPECT_GT(r1.fallbackCellInstances, 0);
    EXPECT_EQ(r2.fallbackCellInstances, 0);
    // Host executes part of the model on V1.
    EXPECT_GT(r1.cpuMacs, 0u);
    EXPECT_GT(r1.cpuBusyMs, 0.0);
    // Accelerator-side energy stays low despite the high latency.
    EXPECT_LT(r1.energyMj / r1.latencyMs, r2.energyMj / r2.latencyMs);
}

TEST(SimulatorCrossConfig, V1WinsComputeBoundMidModel)
{
    // ~7M-parameter conv3x3 model: cached on V1, streamed on V2/V3.
    auto cell = nas::makeChainCell({Op::Conv3x3});
    Simulator v1(arch::configV1());
    Simulator v2(arch::configV2());
    EXPECT_LT(v1.runCell(cell).latencyMs, v2.runCell(cell).latencyMs);
}

TEST(SimulatorCrossConfig, V2WinsLargestModels)
{
    // The Figure 14 crossover: beyond the V1 cache budget, bandwidth
    // dominates and V2 takes over.
    Simulator v1(arch::configV1());
    Simulator v2(arch::configV2());
    EXPECT_LT(v2.runCell(bigCell()).latencyMs,
              v1.runCell(bigCell()).latencyMs);
}

TEST(SimulatorCrossConfig, LatencyWithinPaperRange)
{
    // All NASBench cells land in roughly [0.07, 7] ms on every config.
    for (const auto &cfg : arch::allConfigs()) {
        Simulator sim(cfg);
        double lo = sim.runCell(smallCell()).latencyMs;
        double hi = sim.runCell(bigCell()).latencyMs;
        EXPECT_GT(lo, 0.05);
        EXPECT_LT(lo, 0.2);
        EXPECT_GT(hi, 3.0);
        EXPECT_LT(hi, 8.0);
    }
}

TEST(SimulatorOverhead, EmptyProgramIsJustFixedOverhead)
{
    Program empty;
    Simulator sim(arch::configV2());
    PerfResult r = sim.run(empty);
    EXPECT_NEAR(r.latencyMs,
                arch::configV2().inferenceOverheadUs * 1e-3, 1e-9);
}

TEST(SimulatorEnergy, ScalesWithModelSize)
{
    Simulator sim(arch::configV1());
    EXPECT_GT(sim.runCell(bigCell()).energyMj,
              5.0 * sim.runCell(smallCell()).energyMj);
}

TEST(SimulatorEnergy, WithinPaperMagnitude)
{
    // Paper Table 3: energies between ~0.17 and ~24 mJ.
    Simulator v1(arch::configV1());
    Simulator v2(arch::configV2());
    for (const auto &cell : {smallCell(), bigCell()}) {
        for (Simulator *sim : {&v1, &v2}) {
            double e = sim->runCell(cell).energyMj;
            EXPECT_GT(e, 0.05);
            EXPECT_LT(e, 30.0);
        }
    }
}

} // namespace
