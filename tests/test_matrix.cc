/** @file Unit tests for the dense matrix primitives. */

#include <gtest/gtest.h>

#include "gnn/matrix.hh"

namespace
{

using namespace etpu::gnn;

Matrix
fill(int r, int c, float start)
{
    Matrix m(r, c);
    float v = start;
    for (int i = 0; i < r; i++) {
        for (int j = 0; j < c; j++)
            m.at(i, j) = v++;
    }
    return m;
}

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++)
            EXPECT_FLOAT_EQ(m.at(i, j), 0.0f);
    }
}

// Regression: a negative shape must hit the shape panic, not wrap to a
// huge size_t and die in bad_alloc inside the storage allocation.
TEST(Matrix, NegativeShapePanics)
{
    EXPECT_DEATH(Matrix(-1, 4), "negative matrix shape -1x4");
    EXPECT_DEATH(Matrix(4, -1), "negative matrix shape 4x-1");
    EXPECT_DEATH(Matrix(-3, -7), "negative matrix shape");
}

TEST(Matrix, Matmul2x2)
{
    Matrix a = fill(2, 2, 1); // [1 2; 3 4]
    Matrix b = fill(2, 2, 5); // [5 6; 7 8]
    Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, MatmulRectangular)
{
    Matrix a = fill(2, 3, 1);
    Matrix b = fill(3, 4, 1);
    Matrix c = matmul(a, b);
    EXPECT_EQ(c.rows(), 2);
    EXPECT_EQ(c.cols(), 4);
    // c[0][0] = 1*1 + 2*5 + 3*9 = 38
    EXPECT_FLOAT_EQ(c.at(0, 0), 38);
}

TEST(Matrix, MatmulTNMatchesExplicitTranspose)
{
    Matrix a = fill(3, 2, 1);
    Matrix b = fill(3, 4, 2);
    Matrix c = matmulTN(a, b); // a^T (2x3) * b (3x4)
    EXPECT_EQ(c.rows(), 2);
    EXPECT_EQ(c.cols(), 4);
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 4; j++) {
            float expect = 0;
            for (int k = 0; k < 3; k++)
                expect += a.at(k, i) * b.at(k, j);
            EXPECT_FLOAT_EQ(c.at(i, j), expect);
        }
    }
}

TEST(Matrix, MatmulNTMatchesExplicitTranspose)
{
    Matrix a = fill(2, 3, 1);
    Matrix b = fill(4, 3, 2);
    Matrix c = matmulNT(a, b); // a (2x3) * b^T (3x4)
    EXPECT_EQ(c.rows(), 2);
    EXPECT_EQ(c.cols(), 4);
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 4; j++) {
            float expect = 0;
            for (int k = 0; k < 3; k++)
                expect += a.at(i, k) * b.at(j, k);
            EXPECT_FLOAT_EQ(c.at(i, j), expect);
        }
    }
}

TEST(Matrix, ShapeMismatchPanics)
{
    Matrix a(2, 3), b(4, 2);
    EXPECT_DEATH(matmul(a, b), "mismatch");
}

TEST(Matrix, HcatAndHsplitRoundTrip)
{
    Matrix a = fill(3, 2, 1);
    Matrix b = fill(3, 4, 10);
    Matrix cat = hcat({&a, &b});
    EXPECT_EQ(cat.cols(), 6);
    EXPECT_FLOAT_EQ(cat.at(1, 1), a.at(1, 1));
    EXPECT_FLOAT_EQ(cat.at(2, 3), b.at(2, 1));
    auto parts = hsplit(cat, {2, 4});
    ASSERT_EQ(parts.size(), 2u);
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 2; j++)
            EXPECT_FLOAT_EQ(parts[0].at(i, j), a.at(i, j));
        for (int j = 0; j < 4; j++)
            EXPECT_FLOAT_EQ(parts[1].at(i, j), b.at(i, j));
    }
}

TEST(Matrix, HsplitBadWidthsPanics)
{
    Matrix m(2, 5);
    EXPECT_DEATH(hsplit(m, {2, 2}), "hsplit");
}

TEST(Matrix, ColSum)
{
    Matrix m = fill(3, 2, 1); // cols: {1,3,5}, {2,4,6}
    Matrix s = colSum(m);
    EXPECT_EQ(s.rows(), 1);
    EXPECT_FLOAT_EQ(s.at(0, 0), 9);
    EXPECT_FLOAT_EQ(s.at(0, 1), 12);
}

TEST(Matrix, AddInPlaceAndScale)
{
    Matrix a = fill(2, 2, 1);
    Matrix b = fill(2, 2, 1);
    a.addInPlace(b);
    a.scale(0.5f);
    EXPECT_FLOAT_EQ(a.at(0, 0), 1);
    EXPECT_FLOAT_EQ(a.at(1, 1), 4);
}

TEST(Matrix, AddInPlaceShapeMismatchPanics)
{
    Matrix a(2, 2), b(2, 3);
    EXPECT_DEATH(a.addInPlace(b), "mismatch");
}

} // namespace
