/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace
{

using etpu::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; i++)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    uint64_t x = r.next();
    uint64_t y = r.next();
    EXPECT_TRUE(x != 0 || y != 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(1);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(2);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; i++) {
        double u = r.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(4);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; i++)
        counts[r.uniformInt(10)]++;
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 500);
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng r(6);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; i++) {
        double z = r.normal();
        sum += z;
        sq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams)
{
    Rng r(7);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; i++)
        sum += r.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, TruncatedNormalWithinTwoSigma)
{
    Rng r(8);
    for (int i = 0; i < 20000; i++)
        EXPECT_LE(std::abs(r.truncatedNormal(0.5)), 1.0 + 1e-9);
}

} // namespace
