/**
 * @file
 * Deterministic robustness sweeps over every parser that consumes
 * untrusted input — the ctest-resident sibling of the fuzz/ harnesses.
 * For each well-formed input this suite feeds the parser every prefix
 * truncation and a seeded set of single-byte corruptions, asserting
 * the shared contract: parse cleanly or reject cleanly, never crash,
 * and never accept an input that violates the format's own
 * invariants. Runs in milliseconds, so it gates every ctest
 * invocation — including the ASan/UBSan and TSan CI legs — without a
 * fuzzing toolchain.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "gnn/predictor.hh"
#include "nasbench/cell_spec.hh"
#include "nasbench/dataset.hh"
#include "query/dataset_index.hh"

namespace etpu
{
namespace
{

/** Deterministic PRNG so failures reproduce byte for byte. */
uint32_t
xorshift32(uint32_t &state)
{
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

/** Reference recognizer for parseInt's grammar: '-'? digit+. */
bool
looksLikeInt(std::string_view text)
{
    if (!text.empty() && text.front() == '-')
        text.remove_prefix(1);
    if (text.empty())
        return false;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
    }
    return true;
}

class ParserRobustness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The corrupted inputs are *supposed* to draw warnings;
        // thousands of them would drown real test output.
        was_quiet_ = setQuietLogging(true);
    }

    void
    TearDown() override
    {
        setQuietLogging(was_quiet_);
        for (const std::string &path : scratch_)
            std::remove(path.c_str());
    }

    /** Write bytes to a scratch file that TearDown removes. */
    const std::string &
    scratchFile(const std::string &bytes)
    {
        std::string path =
            (std::filesystem::temp_directory_path() /
             ("etpu_robust_" + std::to_string(::getpid()) + "_" +
              std::to_string(scratch_.size()) + ".bin"))
                .string();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        scratch_.push_back(path);
        return scratch_.back();
    }

    /** Read a file produced by one of the production writers. */
    static std::string
    slurp(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        EXPECT_FALSE(bytes.empty()) << path;
        return bytes;
    }

    bool was_quiet_ = false;
    std::vector<std::string> scratch_;
};

nas::Dataset
tinyDataset()
{
    nas::Dataset ds;
    for (unsigned i = 0; i < 5; i++) {
        nas::ModelRecord r;
        r.spec = nas::makeChainCell(
            {i % 2 ? nas::Op::Conv1x1 : nas::Op::Conv3x3});
        r.accuracy = 0.7f + 0.01f * static_cast<float>(i);
        r.params = 1000 + i;
        for (int c = 0; c < nas::numAccelerators; c++) {
            r.latencyMs[static_cast<size_t>(c)] = 1.0f + static_cast<float>(i + c);
            r.energyMj[static_cast<size_t>(c)] = 0.5f + static_cast<float>(i + c);
        }
        ds.records.push_back(r);
    }
    return ds;
}

gnn::CheckpointBundle
tinyBundle()
{
    gnn::CheckpointBundle bundle;
    gnn::ModelConfig cfg;
    cfg.latent = 4;
    cfg.messagePassingSteps = 1;
    gnn::Predictor p;
    p.name = gnn::modelName(gnn::TargetMetric::Latency, 0);
    p.model.initZero(cfg);
    p.targetMean = 2.0;
    p.targetStd = 1.5;
    bundle.models.push_back(std::move(p));
    return bundle;
}

// --- filter grammar ---------------------------------------------------

const char *const kFilterExprs[] = {
    "accuracy>=0.7,latency@V2<3",
    "winner==V2",
    " depth <= 4 , width > 1 ",
    "macs<1e6,params>100,conv3x3==2,maxpool!=0",
    "weight_bytes>=2048,conv1x1<3",
    "energy@V3!=0.5",
};

TEST_F(ParserRobustness, FilterSurvivesEveryTruncation)
{
    for (std::string_view expr : kFilterExprs) {
        for (size_t len = 0; len <= expr.size(); len++) {
            std::string_view prefix = expr.substr(0, len);
            std::string error;
            auto filter = query::Filter::parse(prefix, &error);
            if (!filter) {
                EXPECT_FALSE(error.empty())
                    << "rejection without a diagnostic: \"" << prefix
                    << "\"";
                continue;
            }
            // Anything accepted must round-trip through its own
            // canonical form.
            std::string canonical = filter->str();
            auto reparsed = query::Filter::parse(canonical, &error);
            ASSERT_TRUE(reparsed.has_value())
                << "canonical \"" << canonical << "\" from \""
                << prefix << "\": " << error;
            EXPECT_EQ(reparsed->str(), canonical);
            EXPECT_EQ(reparsed->clauses().size(),
                      filter->clauses().size());
        }
    }
}

TEST_F(ParserRobustness, FilterSurvivesSeededByteCorruption)
{
    uint32_t rng = 0x243f6a88u;
    for (std::string_view expr : kFilterExprs) {
        for (int round = 0; round < 200; round++) {
            std::string mutated(expr);
            size_t pos = xorshift32(rng) % mutated.size();
            mutated[pos] = static_cast<char>(xorshift32(rng) & 0xff);
            std::string error;
            auto filter = query::Filter::parse(mutated, &error);
            if (!filter)
                continue;
            std::string canonical = filter->str();
            auto reparsed = query::Filter::parse(canonical, &error);
            ASSERT_TRUE(reparsed.has_value())
                << "canonical \"" << canonical << "\" from mutated \""
                << mutated << "\": " << error;
            EXPECT_EQ(reparsed->str(), canonical);
        }
    }
}

TEST_F(ParserRobustness, ParseMetricSurvivesTruncationAndCorruption)
{
    const char *const names[] = {"accuracy", "latency@V1", "energy@V3",
                                 "params",   "weight_bytes"};
    uint32_t rng = 0x85a308d3u;
    for (std::string_view name : names) {
        for (size_t len = 0; len <= name.size(); len++)
            query::parseMetric(name.substr(0, len));
        for (int round = 0; round < 100; round++) {
            std::string mutated(name);
            size_t pos = xorshift32(rng) % mutated.size();
            mutated[pos] = static_cast<char>(xorshift32(rng) & 0xff);
            query::parseMetric(mutated);
        }
    }
}

// --- env / CLI integers -----------------------------------------------

TEST_F(ParserRobustness, ParseIntMatchesItsGrammarOnTruncations)
{
    const char *const ints[] = {"123456789",
                                "-987654321",
                                "0",
                                "9223372036854775807",
                                "-9223372036854775808",
                                "99999999999999999999"};
    for (std::string_view text : ints) {
        for (size_t len = 0; len <= text.size(); len++) {
            std::string_view prefix = text.substr(0, len);
            auto parsed = parseInt(prefix);
            if (parsed) {
                EXPECT_TRUE(looksLikeInt(prefix)) << prefix;
            }
            // Up to 18 digits always fits in a long long; only
            // overflow may reject a grammatically valid prefix.
            if (looksLikeInt(prefix) && prefix.size() < 18) {
                EXPECT_TRUE(parsed.has_value()) << prefix;
            }
        }
    }
}

TEST_F(ParserRobustness, ParseIntSurvivesSeededByteCorruption)
{
    uint32_t rng = 0x13198a2eu;
    for (int round = 0; round < 2000; round++) {
        std::string text = "1844674407370955161";
        size_t pos = xorshift32(rng) % text.size();
        text[pos] = static_cast<char>(xorshift32(rng) & 0xff);
        auto parsed = parseInt(text);
        if (parsed) {
            EXPECT_TRUE(looksLikeInt(text)) << text;
        }
    }
}

TEST_F(ParserRobustness, EnvWrappersAgreeWithParseIntOnCorruptions)
{
    const char *const name = "ETPU_ROBUSTNESS_PROBE";
    uint32_t rng = 0x03707344u;
    for (int round = 0; round < 500; round++) {
        std::string text = "-4096";
        size_t pos = xorshift32(rng) % text.size();
        // setenv needs a NUL-free C string; byte 1..255 keeps the
        // corrupted text representable as an environment value.
        text[pos] = static_cast<char>(1 + xorshift32(rng) % 255);
        ASSERT_EQ(::setenv(name, text.c_str(), 1), 0);
        EXPECT_EQ(envInt(name), parseInt(text)) << text;
        auto count = envCount(name);
        auto direct = parseInt(text);
        if (direct && *direct >= 0) {
            ASSERT_TRUE(count.has_value()) << text;
            EXPECT_EQ(*count, static_cast<uint64_t>(*direct));
        } else {
            EXPECT_FALSE(count.has_value()) << text;
        }
    }
    ::unsetenv(name);
}

// --- dataset cache bytes ----------------------------------------------

TEST_F(ParserRobustness, DatasetCacheSurvivesEveryTruncation)
{
    nas::Dataset ds = tinyDataset();
    const std::string &full_path = scratchFile("");
    ds.save(full_path, 2);
    std::string bytes = slurp(full_path);

    for (size_t len = 0; len < bytes.size(); len++) {
        const std::string &path =
            scratchFile(bytes.substr(0, len));
        nas::Dataset out;
        // A strict load of a truncated cache must fail; the streamer
        // may salvage leading shards but must never fabricate records.
        EXPECT_FALSE(nas::Dataset::load(path, out)) << "len=" << len;
        size_t streamed = 0;
        nas::Dataset::loadStreaming(
            path, [&streamed](const nas::ModelRecord &) { streamed++; });
        EXPECT_LE(streamed, ds.records.size()) << "len=" << len;
    }
}

TEST_F(ParserRobustness, DatasetCacheRejectsSeededByteFlips)
{
    nas::Dataset ds = tinyDataset();
    const std::string &full_path = scratchFile("");
    ds.save(full_path, 1);
    std::string bytes = slurp(full_path);

    uint32_t rng = 0xa4093822u;
    for (int round = 0; round < 300; round++) {
        std::string mutated = bytes;
        size_t pos = xorshift32(rng) % mutated.size();
        uint8_t bit = 1u << (xorshift32(rng) % 8);
        mutated[pos] = static_cast<char>(
            static_cast<uint8_t>(mutated[pos]) ^ bit);
        const std::string &path = scratchFile(mutated);
        nas::Dataset out;
        if (nas::Dataset::load(path, out)) {
            // Flips in the CRC-covered region must be caught, so an
            // accepted mutant can only differ in the unprotected
            // header — never in the records themselves.
            EXPECT_EQ(out.records.size(), ds.records.size());
        }
    }
}

// --- checkpoint bytes -------------------------------------------------

TEST_F(ParserRobustness, CheckpointSurvivesEveryTruncation)
{
    const std::string &full_path = scratchFile("");
    ASSERT_TRUE(gnn::saveCheckpoint(full_path, tinyBundle()));
    std::string bytes = slurp(full_path);

    for (size_t len = 0; len < bytes.size(); len++) {
        const std::string &path = scratchFile(bytes.substr(0, len));
        gnn::CheckpointBundle out;
        EXPECT_FALSE(gnn::loadCheckpoint(path, out)) << "len=" << len;
        EXPECT_TRUE(out.models.empty()) << "len=" << len;
    }
}

TEST_F(ParserRobustness, CheckpointRejectsSeededByteFlips)
{
    const std::string &full_path = scratchFile("");
    ASSERT_TRUE(gnn::saveCheckpoint(full_path, tinyBundle()));
    std::string bytes = slurp(full_path);

    uint32_t rng = 0x299f31d0u;
    size_t accepted = 0;
    for (int round = 0; round < 300; round++) {
        std::string mutated = bytes;
        size_t pos = xorshift32(rng) % mutated.size();
        uint8_t bit = 1u << (xorshift32(rng) % 8);
        mutated[pos] = static_cast<char>(
            static_cast<uint8_t>(mutated[pos]) ^ bit);
        const std::string &path = scratchFile(mutated);
        gnn::CheckpointBundle out;
        if (gnn::loadCheckpoint(path, out)) {
            accepted++;
        } else {
            EXPECT_TRUE(out.models.empty());
        }
    }
    // The ETPUGNN1 payload is fully CRC-covered, so nearly every flip
    // must be rejected (only flips inside the 24-byte header that
    // happen to keep it self-consistent could slip through — and the
    // CRC field itself cannot).
    EXPECT_LT(accepted, 5u);
}

} // namespace
} // namespace etpu
