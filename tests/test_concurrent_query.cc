/**
 * @file
 * Concurrency tests for the shared read-only DatasetIndex: many
 * threads hammer topK (whose lazy sorted-permutation cache is the one
 * piece of mutable state behind const queries), paretoFront, filters
 * and aggregations on one index, and every thread's results must be
 * identical to a single-threaded reference. Run under
 * ETPU_SANITIZE=thread this suite is the regression test for the
 * sortedBy cache data race: before the shared-mutex fill the TSan leg
 * reported concurrent map writes here.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "nasbench/cell_spec.hh"
#include "nasbench/dataset.hh"
#include "query/dataset_index.hh"

namespace
{

using namespace etpu;
using namespace etpu::query;

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

/** Deterministic synthetic campaign with ties, NaNs and spread. */
nas::Dataset
makeDataset(size_t rows)
{
    nas::Dataset ds;
    ds.records.reserve(rows);
    uint32_t state = 0x9e3779b9u;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    };
    for (size_t i = 0; i < rows; i++) {
        nas::ModelRecord r;
        r.spec = nas::makeChainCell({nas::Op::Conv3x3});
        // Duplicate accuracy values every 8 rows exercise tie-breaks;
        // a sprinkle of NaN latencies exercises the NaN-exclusion
        // path of the sorted permutations.
        r.accuracy = 0.5f + static_cast<float>(i % 8) * 0.05f;
        for (size_t c = 0; c < r.latencyMs.size(); c++) {
            r.latencyMs[c] = (next() % 64 == 0)
                ? std::numeric_limits<float>::quiet_NaN()
                : 1.0f + static_cast<float>(next() % 1000) * 0.01f;
            r.energyMj[c] = 0.5f + static_cast<float>(next() % 500) * 0.01f;
        }
        r.params = 1000 + next() % 9000;
        r.depth = static_cast<uint8_t>(2 + i % 5);
        r.width = static_cast<uint8_t>(1 + i % 3);
        r.numConv3x3 = 1;
        ds.records.push_back(r);
    }
    return ds;
}

/** The metric mix every worker cycles through. */
std::vector<Metric>
metricMix()
{
    return {
        {MetricKind::Accuracy, 0}, {MetricKind::Params, 0},
        {MetricKind::Depth, 0},    latency(0),
        latency(1),                latency(2),
        energy(0),                 energy(2),
        {MetricKind::Winner, 0},
    };
}

TEST(ConcurrentQuery, TopKMatchesSingleThreadedReference)
{
    nas::Dataset ds = makeDataset(4000);
    DatasetIndex idx = DatasetIndex::build(ds);

    // Reference answers from a second, never-shared index, so the
    // shared one's caches are all filled under contention.
    DatasetIndex ref_idx = DatasetIndex::build(ds);
    std::vector<Metric> metrics = metricMix();
    std::vector<std::vector<uint32_t>> ref_asc(metrics.size());
    std::vector<std::vector<uint32_t>> ref_desc(metrics.size());
    for (size_t m = 0; m < metrics.size(); m++) {
        ref_idx.topK(metrics[m], 100, SortOrder::Ascending, ref_asc[m]);
        ref_idx.topK(metrics[m], 100, SortOrder::Descending,
                     ref_desc[m]);
    }

    constexpr unsigned n_threads = 8;
    constexpr int rounds = 40;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; t++) {
        pool.emplace_back([&, t]() {
            std::vector<uint32_t> out;
            for (int round = 0; round < rounds; round++) {
                // Stagger the metric order per thread so first-build
                // races hit different cache entries concurrently.
                size_t m = (t + static_cast<size_t>(round)) %
                           metrics.size();
                SortOrder order = (t + round) % 2 == 0
                    ? SortOrder::Ascending
                    : SortOrder::Descending;
                idx.topK(metrics[m], 100, order, out);
                const auto &want = (order == SortOrder::Ascending
                                        ? ref_asc
                                        : ref_desc)[m];
                if (out != want)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentQuery, MixedQueriesAreRaceFreeAndDeterministic)
{
    nas::Dataset ds = makeDataset(2000);
    DatasetIndex idx = DatasetIndex::build(ds);

    DatasetIndex ref_idx = DatasetIndex::build(ds);
    Filter f;
    f.where({MetricKind::Accuracy, 0}, CompareOp::Ge, 0.6)
        .where(latency(1), CompareOp::Lt, 9.0);
    std::vector<Objective> objectives = {
        {{MetricKind::Accuracy, 0}, /*maximize=*/true},
        {latency(1), /*maximize=*/false},
    };
    std::vector<uint32_t> ref_rows, ref_front, ref_top;
    ref_idx.filterRows(f, ref_rows);
    ref_idx.paretoFront(objectives, ref_front);
    ref_idx.topK(energy(1), 50, SortOrder::Ascending, ref_top, &f);
    // Aggregate NaN-free columns (energy/params) so the exact
    // double-compare below stays meaningful; the latency columns'
    // injected NaNs would make every sum NaN != NaN.
    GroupAggregate ref_groups = ref_idx.groupBy(
        {MetricKind::Depth, 0}, {energy(0), {MetricKind::Params, 0}});

    constexpr unsigned n_threads = 8;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; t++) {
        pool.emplace_back([&, t]() {
            std::vector<uint32_t> rows, front, top;
            for (int round = 0; round < 20; round++) {
                switch ((t + round) % 4) {
                  case 0:
                    idx.filterRows(f, rows);
                    if (rows != ref_rows)
                        mismatches.fetch_add(1);
                    break;
                  case 1:
                    idx.paretoFront(objectives, front);
                    if (front != ref_front)
                        mismatches.fetch_add(1);
                    break;
                  case 2:
                    idx.topK(energy(1), 50, SortOrder::Ascending, top,
                             &f);
                    if (top != ref_top)
                        mismatches.fetch_add(1);
                    break;
                  case 3: {
                    GroupAggregate ga = idx.groupBy(
                        {MetricKind::Depth, 0},
                        {energy(0), {MetricKind::Params, 0}});
                    if (ga.keys != ref_groups.keys ||
                        ga.counts != ref_groups.counts ||
                        ga.sums != ref_groups.sums) {
                        mismatches.fetch_add(1);
                    }
                    break;
                  }
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentQuery, WarmPrebuildsThePermutations)
{
    nas::Dataset ds = makeDataset(500);
    DatasetIndex idx = DatasetIndex::build(ds);
    std::vector<Metric> metrics = metricMix();
    idx.warm(metrics);

    // Warmed references must be the very objects later queries reuse
    // (no rebuild, no invalidation).
    std::vector<const std::vector<uint32_t> *> warmed;
    warmed.reserve(metrics.size());
    for (Metric m : metrics)
        warmed.push_back(&idx.sortedBy(m));
    for (size_t m = 0; m < metrics.size(); m++)
        EXPECT_EQ(&idx.sortedBy(metrics[m]), warmed[m]);
}

TEST(ConcurrentQuery, SortedByReferencesStayValidAcrossFills)
{
    nas::Dataset ds = makeDataset(300);
    DatasetIndex idx = DatasetIndex::build(ds);
    const std::vector<uint32_t> &first = idx.sortedBy(latency(0));
    std::vector<uint32_t> snapshot = first;
    // Filling other cache entries must not move the first one.
    for (Metric m : metricMix())
        idx.sortedBy(m);
    EXPECT_EQ(&idx.sortedBy(latency(0)), &first);
    EXPECT_EQ(first, snapshot);
}

TEST(ConcurrentQuery, CopyAndMoveCarryTheCaches)
{
    nas::Dataset ds = makeDataset(200);
    DatasetIndex idx = DatasetIndex::build(ds);
    std::vector<uint32_t> want;
    idx.topK({MetricKind::Accuracy, 0}, 25, SortOrder::Ascending, want);

    DatasetIndex copy(idx);
    std::vector<uint32_t> got;
    copy.topK({MetricKind::Accuracy, 0}, 25, SortOrder::Ascending, got);
    EXPECT_EQ(got, want);
    EXPECT_EQ(copy.size(), idx.size());

    DatasetIndex moved(std::move(copy));
    moved.topK({MetricKind::Accuracy, 0}, 25, SortOrder::Ascending, got);
    EXPECT_EQ(got, want);

    DatasetIndex assigned;
    assigned = idx;
    assigned.topK({MetricKind::Accuracy, 0}, 25, SortOrder::Ascending,
                  got);
    EXPECT_EQ(got, want);
}

TEST(ConcurrentQuery, NanRowsNeverRankUnderContention)
{
    nas::Dataset ds = makeDataset(1000);
    DatasetIndex idx = DatasetIndex::build(ds);
    const std::vector<double> &col = idx.column(latency(2));

    constexpr unsigned n_threads = 6;
    std::atomic<int> bad{0};
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < n_threads; t++) {
        pool.emplace_back([&]() {
            std::vector<uint32_t> out;
            idx.topK(latency(2), idx.size(), SortOrder::Ascending, out);
            for (uint32_t row : out) {
                if (std::isnan(col[row]))
                    bad.fetch_add(1);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(bad.load(), 0);
}

} // namespace
