/** @file End-to-end integration tests across the whole pipeline. */

#include <gtest/gtest.h>

#include <array>

#include "gnn/trainer.hh"
#include "nasbench/accuracy.hh"
#include "nasbench/enumerator.hh"
#include "pipeline/builder.hh"
#include "sanitizer_budget.hh"
#include "tpusim/simulator.hh"
#include "stats/correlation.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

/** Shared dataset over the <=5-vertex space (2,532 cells). */
const nas::Dataset &
smallSpaceDataset()
{
    static const nas::Dataset ds = [] {
        auto cells = nas::enumerateCells({5, 9});
        return pipeline::buildDataset(cells);
    }();
    return ds;
}

TEST(Integration, LatencyCorrelatesWithParameters)
{
    // Figure 14: latency is mostly proportional to trainable params.
    const auto &ds = smallSpaceDataset();
    std::vector<double> params, lat;
    for (const auto &r : ds.records) {
        params.push_back(static_cast<double>(r.params));
        lat.push_back(r.latencyMs[0]);
    }
    EXPECT_GT(stats::spearman(params, lat), 0.8);
}

TEST(Integration, LatencyBucketsKeyedByConv3x3Count)
{
    // Figure 5: the number of 3x3 convolutions drives latency buckets.
    const auto &ds = smallSpaceDataset();
    std::array<std::vector<double>, 4> by_count;
    for (const auto &r : ds.records) {
        if (r.numConv3x3 < 4)
            by_count[r.numConv3x3].push_back(r.latencyMs[1]);
    }
    for (int c = 0; c + 1 < 4; c++) {
        ASSERT_FALSE(by_count[c].empty());
        double mean_lo = stats::summarize(by_count[c]).mean;
        double mean_hi = stats::summarize(by_count[c + 1]).mean;
        EXPECT_LT(mean_lo, mean_hi) << "conv3x3 count " << c;
    }
}

TEST(Integration, WinnerBucketsCoverWholeSpace)
{
    const auto &ds = smallSpaceDataset();
    std::array<size_t, 3> wins = {0, 0, 0};
    for (const auto &r : ds.records) {
        int w = 0;
        for (int c = 1; c < 3; c++) {
            if (r.latencyMs[c] < r.latencyMs[w])
                w = c;
        }
        wins[static_cast<size_t>(w)]++;
    }
    EXPECT_EQ(wins[0] + wins[1] + wins[2], ds.size());
    // V1 wins the bulk of the space (paper Table 5: ~93%).
    EXPECT_GT(static_cast<double>(wins[0]) / ds.size(), 0.5);
}

TEST(Integration, EnergyLatencyRelationIsLinear)
{
    // Figure 6: latency and energy are strongly linearly related.
    const auto &ds = smallSpaceDataset();
    std::vector<double> lat, en;
    for (const auto &r : ds.records) {
        lat.push_back(r.latencyMs[0]);
        en.push_back(r.energyMj[0]);
    }
    EXPECT_GT(stats::pearson(lat, en), 0.9);
}

TEST(Integration, LearnedModelRanksLatencyWell)
{
    // Miniature Table 8: train the GNN on simulated V1 latencies of
    // the small space and check the correlation metrics.
    const auto &ds = smallSpaceDataset();
    auto split = gnn::splitDataset(ds.size(), 0x5eed);
    auto to_sample = [&](size_t idx) {
        gnn::Sample s;
        s.graph = gnn::featurize(ds.records[idx].spec);
        s.target = ds.records[idx].latencyMs[0];
        return s;
    };
    std::vector<gnn::Sample> train, test;
    for (size_t i : split.train)
        train.push_back(to_sample(i));
    for (size_t i : split.test)
        test.push_back(to_sample(i));

    gnn::TrainConfig cfg;
    cfg.epochs = testutil::scaledEpochs(80);
    gnn::Trainer trainer(cfg);
    trainer.train(train);
    gnn::EvalMetrics m = trainer.evaluate(test);
    if (testutil::checkConvergence) {
        EXPECT_GT(m.spearman, 0.90);
        EXPECT_GT(m.pearson, 0.95);
        EXPECT_GT(m.avgAccuracy, 0.85);
    }
}

TEST(Integration, CachingAblationSlowsLargeAnchors)
{
    auto cfg = arch::configV1();
    sim::Simulator with(cfg);
    cfg.compiler.parameterCaching = false;
    sim::Simulator without(cfg);
    const auto &best = nas::anchorCells()[0].cell;
    double lat_with = with.runCell(best).latencyMs;
    double lat_without = without.runCell(best).latencyMs;
    EXPECT_GT(lat_without, lat_with * 1.05);
}

TEST(Integration, AccuracyFilterKeepsMostOfTheSpace)
{
    const auto &ds = smallSpaceDataset();
    auto kept = ds.filterByAccuracy(0.70);
    double frac =
        static_cast<double>(kept.size()) / static_cast<double>(ds.size());
    EXPECT_GT(frac, 0.95);
}

} // namespace
