/**
 * @file
 * Figure 10: mean validation accuracy vs graph depth and graph width.
 * The paper's whiskers put the optima at depth 3 and width 5.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

void
printAxis(const char *name, const std::map<int, std::vector<double>> &by)
{
    AsciiTable t(std::string("Figure 10 — accuracy vs ") + name);
    t.header({name, "# models", "mean acc", "p25", "p75"});
    int best = -1;
    double best_mean = -1;
    for (const auto &[key, accs] : by) {
        auto s = stats::summarize(accs);
        if (s.mean > best_mean) {
            best_mean = s.mean;
            best = key;
        }
        t.row({std::to_string(key), fmtCount(accs.size()),
               fmtDouble(s.mean, 4),
               fmtDouble(stats::quantile(accs, 0.25), 4),
               fmtDouble(stats::quantile(accs, 0.75), 4)});
    }
    t.print(std::cout);
    std::cout << "best mean accuracy at " << name << " = " << best
              << "\n\n";
}

void
report()
{
    const auto &recs = bench::filteredRecords();
    std::map<int, std::vector<double>> by_depth, by_width;
    for (const auto *r : recs) {
        by_depth[r->depth].push_back(r->accuracy);
        by_width[r->width].push_back(r->accuracy);
    }
    printAxis("depth", by_depth);
    printAxis("width", by_width);
    std::cout << "paper optima: depth 3, width 5\n";
}

void
BM_StructureAggregation(benchmark::State &state)
{
    const auto &recs = bench::filteredRecords();
    for (auto _ : state) {
        double sums[16] = {};
        for (const auto *r : recs)
            sums[std::min<int>(r->depth, 15)] += r->accuracy;
        benchmark::DoNotOptimize(sums[3]);
    }
}
BENCHMARK(BM_StructureAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 10 — accuracy vs graph structure",
        "depth beyond 3 hurts accuracy; width keeps helping up to 5");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
