/**
 * @file
 * Figure 10: mean validation accuracy vs graph depth and graph width.
 * The paper's whiskers put the optima at depth 3 and width 5.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

void
printAxis(const char *name, query::Metric key)
{
    const auto &idx = bench::index();
    std::vector<std::pair<double, std::vector<uint32_t>>> groups;
    idx.groupRows(key, groups, &bench::accuracyFilterQuery());

    AsciiTable t(std::string("Figure 10 — accuracy vs ") + name);
    t.header({name, "# models", "mean acc", "p25", "p75"});
    int best = -1;
    double best_mean = -1;
    std::vector<double> accs;
    for (const auto &[k, rows] : groups) {
        idx.gather({query::MetricKind::Accuracy, 0}, rows, accs);
        auto s = stats::summarize(accs);
        if (s.mean > best_mean) {
            best_mean = s.mean;
            best = static_cast<int>(k);
        }
        t.row({std::to_string(static_cast<int>(k)),
               fmtCount(accs.size()), fmtDouble(s.mean, 4),
               fmtDouble(stats::quantile(accs, 0.25), 4),
               fmtDouble(stats::quantile(accs, 0.75), 4)});
    }
    t.print(std::cout);
    std::cout << "best mean accuracy at " << name << " = " << best
              << "\n\n";
}

void
report()
{
    printAxis("depth", {query::MetricKind::Depth, 0});
    printAxis("width", {query::MetricKind::Width, 0});
    std::cout << "paper optima: depth 3, width 5\n";
}

void
BM_StructureAggregation(benchmark::State &state)
{
    const auto &idx = bench::index();
    for (auto _ : state) {
        query::GroupAggregate by_depth =
            idx.groupBy({query::MetricKind::Depth, 0},
                        {{query::MetricKind::Accuracy, 0}},
                        &bench::accuracyFilterQuery());
        benchmark::DoNotOptimize(by_depth.counts.data());
    }
}
BENCHMARK(BM_StructureAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 10 — accuracy vs graph structure",
        "depth beyond 3 hurts accuracy; width keeps helping up to 5");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
