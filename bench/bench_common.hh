/**
 * @file
 * Shared plumbing for the per-table / per-figure bench binaries: the
 * cached characterization dataset, winner/bucket helpers and the
 * paper-vs-ours report formatting.
 *
 * Environment knobs:
 *  - ETPU_SAMPLE=N        characterize only N sampled cells (fast runs)
 *  - ETPU_DATASET_PATH=P  dataset cache location
 *  - ETPU_THREADS=N       worker threads
 */

#ifndef ETPU_BENCH_COMMON_HH
#define ETPU_BENCH_COMMON_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/table.hh"
#include "nasbench/accuracy.hh"
#include "nasbench/dataset.hh"
#include "pipeline/builder.hh"
#include "query/dataset_index.hh"

namespace etpu::bench
{

/** Paper accuracy threshold used by most evaluation tables. */
inline constexpr double accuracyFilter = 0.70;

/** The shared dataset (built and cached on first use). */
const nas::Dataset &dataset();

/**
 * Columnar index over dataset(), built on first use and shared by the
 * figure/table benches: filtering, top-k, Pareto fronts and group-by
 * aggregations all run against this instead of re-scanning records.
 */
const query::DatasetIndex &index();

/**
 * The >=70% accuracy filter as an index Filter. The threshold is
 * cast through float so boundary records match filteredRecords()
 * (record accuracy is stored as float).
 */
const query::Filter &accuracyFilterQuery();

/** Rows of index() passing the accuracy filter, in dataset order. */
const std::vector<uint32_t> &filteredRows();

/**
 * Visit every record once, in dataset order, without requiring the
 * whole dataset in memory: when the shared dataset is not already
 * materialized and a v2 cache file exists, records stream from it
 * shard by shard (Dataset::loadStreaming); otherwise the in-memory
 * dataset is walked. Single-pass consumers (histograms, extrema,
 * running sums) should prefer this over dataset().records.
 *
 * A cache that turns out damaged mid-stream is fatal (a bench must
 * not publish numbers from a subset of the campaign); a cache that is
 * unreadable from the start falls back to rebuilding in memory.
 */
void
forEachRecord(const std::function<void(const nas::ModelRecord &)> &fn);

/** Records passing the >=70% accuracy filter. */
const std::vector<const nas::ModelRecord *> &filteredRecords();

/** Index of the fastest configuration for a record (0=V1,1=V2,2=V3). */
int winnerIndex(const nas::ModelRecord &r);

/** Look up a record by cell fingerprint; null when absent. */
const nas::ModelRecord *findRecord(const Hash128 &fingerprint);

/** Record of a paper anchor cell (by anchor index), null if absent. */
const nas::ModelRecord *anchorRecord(size_t anchor_index);

/** Print the bench banner: experiment id and paper context. */
void banner(const std::string &experiment, const std::string &claim);

/** "ours (paper X)" cell formatting. */
std::string vsPaper(double ours, double paper, int precision = 4);

/** Name of config c ("V1"/"V2"/"V3"). */
std::string configName(int c);

/** Directory for CSV series dumps (created on demand). */
std::string csvDir();

} // namespace etpu::bench

#endif // ETPU_BENCH_COMMON_HH
