/**
 * @file
 * Table 8: train one graph-network performance model per Edge TPU
 * configuration on the simulated latencies (60/20/20 split, Adam
 * lr 1e-3, batch 16) and report average accuracy, Spearman and Pearson
 * correlation on the held-out test set.
 *
 * Environment knobs: ETPU_GNN_EPOCHS (default 3), ETPU_GNN_TRAIN
 * (cap on training samples, default 120000; 0 = full 60% split).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "bench_common.hh"
#include "gnn/trainer.hh"

namespace
{

using namespace etpu;

struct PaperRow
{
    double accuracy, spearman, pearson;
};
const PaperRow paperRows[3] = {{0.968, 0.99977, 0.99959},
                               {0.979, 0.99981, 0.99974},
                               {0.964, 0.99925, 0.99975}};

size_t
envSize(const char *name, size_t fallback)
{
    if (const char *env = std::getenv(name)) {
        long v = std::atol(env);
        if (v >= 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

void
report()
{
    const auto &ds = bench::dataset();
    auto split = gnn::splitDataset(ds.size(), 0x5eed);
    size_t train_cap = envSize("ETPU_GNN_TRAIN", 120000);
    if (train_cap && split.train.size() > train_cap)
        split.train.resize(train_cap);
    size_t test_cap = envSize("ETPU_GNN_TEST", 40000);
    if (test_cap && split.test.size() > test_cap)
        split.test.resize(test_cap);
    int epochs =
        static_cast<int>(envSize("ETPU_GNN_EPOCHS", 3));

    AsciiTable t("Table 8 — learned performance model per config");
    t.header({"Metric", "V1", "V2", "V3"});
    std::vector<std::string> rows[7];
    for (int c = 0; c < 3; c++) {
        auto to_sample = [&](size_t idx) {
            gnn::Sample s;
            s.graph = gnn::featurize(ds.records[idx].spec);
            s.target = ds.records[idx].latencyMs[static_cast<size_t>(c)];
            return s;
        };
        std::vector<gnn::Sample> train, test;
        train.reserve(split.train.size());
        for (size_t i : split.train)
            train.push_back(to_sample(i));
        for (size_t i : split.test)
            test.push_back(to_sample(i));

        gnn::TrainConfig cfg;
        cfg.epochs = epochs;
        cfg.learningRate = 1e-3;
        cfg.batchSize = 16;
        cfg.seed = 0x5eed + static_cast<uint64_t>(c);
        gnn::Trainer trainer(cfg);
        trainer.train(train);
        gnn::EvalMetrics m = trainer.evaluate(test);

        const PaperRow &p = paperRows[c];
        rows[0].push_back(fmtDouble(cfg.learningRate, 3));
        rows[1].push_back(std::to_string(cfg.batchSize));
        rows[2].push_back(fmtCount(train.size()) + " (paper 254,160)");
        rows[3].push_back(fmtCount(test.size()) + " (paper 84,680)");
        rows[4].push_back(bench::vsPaper(m.avgAccuracy, p.accuracy, 3));
        rows[5].push_back(bench::vsPaper(m.spearman, p.spearman, 5));
        rows[6].push_back(bench::vsPaper(m.pearson, p.pearson, 5));
    }
    const char *names[7] = {"Learning Rate",        "Batch Size",
                            "Training Set Size",    "Test Set Size",
                            "Avg. Accuracy",        "Spearman Correlation",
                            "Pearson Correlation"};
    for (int m = 0; m < 7; m++) {
        std::vector<std::string> cells = {names[m]};
        cells.insert(cells.end(), rows[m].begin(), rows[m].end());
        t.row(cells);
    }
    t.print(std::cout);
}

void
BM_GnnPrediction(benchmark::State &state)
{
    // The paper's pitch: learned-model evaluation takes milliseconds
    // (vs an expensive cycle-accurate simulation).
    const auto &ds = bench::dataset();
    gnn::GraphsTuple g = gnn::featurize(ds.records[0].spec);
    etpu::Rng rng(1);
    gnn::GraphNetModel model;
    model.init({}, rng);
    for (auto _ : state) {
        auto r = gnn::forward(model, g);
        benchmark::DoNotOptimize(r.prediction);
    }
}
BENCHMARK(BM_GnnPrediction)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 8 — learned performance model",
        "~96-98% average accuracy and >0.999 Spearman/Pearson "
        "correlation against simulator ground truth");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
