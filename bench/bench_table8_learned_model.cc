/**
 * @file
 * Table 8: train one graph-network performance model per Edge TPU
 * configuration on the simulated latencies (60/20/20 split, Adam
 * lr 1e-3, batch 16) and report average accuracy, Spearman and Pearson
 * correlation on the held-out test set. Runs through the same
 * gnn::runExperiment harness as the etpu_train CLI, so these numbers
 * come from exactly the code that writes deployable checkpoints.
 *
 * Environment knobs (strictly parsed; junk warns and falls back):
 * ETPU_GNN_EPOCHS (default 3), ETPU_GNN_TRAIN (cap on training
 * samples, default 120000; 0 = full 60% split), ETPU_GNN_TEST (cap on
 * test samples, default 40000).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "gnn/experiment.hh"
#include "gnn/predict_context.hh"

namespace
{

using namespace etpu;

struct PaperRow
{
    double accuracy, spearman, pearson;
};
const PaperRow paperRows[3] = {{0.968, 0.99977, 0.99959},
                               {0.979, 0.99981, 0.99974},
                               {0.964, 0.99925, 0.99975}};

void
report()
{
    const auto &ds = bench::dataset();
    gnn::ExperimentOptions opts;
    gnn::applyEnvOverrides(opts);

    AsciiTable t("Table 8 — learned performance model per config");
    t.header({"Metric", "V1", "V2", "V3"});
    std::vector<std::string> rows[7];
    for (int c = 0; c < 3; c++) {
        auto r = gnn::runExperiment(ds, gnn::TargetMetric::Latency, c,
                                    opts);
        const PaperRow &p = paperRows[c];
        rows[0].push_back(fmtDouble(opts.train.learningRate, 3));
        rows[1].push_back(std::to_string(opts.train.batchSize));
        rows[2].push_back(fmtCount(r.trainSize) + " (paper 254,160)");
        rows[3].push_back(fmtCount(r.testSize) + " (paper 84,680)");
        rows[4].push_back(
            bench::vsPaper(r.metrics.avgAccuracy, p.accuracy, 3));
        rows[5].push_back(
            bench::vsPaper(r.metrics.spearman, p.spearman, 5));
        rows[6].push_back(
            bench::vsPaper(r.metrics.pearson, p.pearson, 5));
    }
    const char *names[7] = {"Learning Rate",        "Batch Size",
                            "Training Set Size",    "Test Set Size",
                            "Avg. Accuracy",        "Spearman Correlation",
                            "Pearson Correlation"};
    for (int m = 0; m < 7; m++) {
        std::vector<std::string> cells = {names[m]};
        cells.insert(cells.end(), rows[m].begin(), rows[m].end());
        t.row(cells);
    }
    t.print(std::cout);
}

void
BM_GnnPrediction(benchmark::State &state)
{
    // The paper's pitch: learned-model evaluation takes milliseconds
    // (vs an expensive cycle-accurate simulation).
    const auto &ds = bench::dataset();
    gnn::GraphsTuple g = gnn::featurize(ds.records[0].spec);
    etpu::Rng rng(1);
    gnn::GraphNetModel model;
    model.init({}, rng);
    for (auto _ : state) {
        auto r = gnn::forward(model, g);
        benchmark::DoNotOptimize(r.prediction);
    }
}
BENCHMARK(BM_GnnPrediction)->Unit(benchmark::kMicrosecond);

void
BM_GnnPredictionBatched(benchmark::State &state)
{
    // The inference hot path the learned characterization backend
    // runs: packed-batch prediction through a warmed PredictContext.
    const auto &ds = bench::dataset();
    size_t count = std::min<size_t>(gnn::predictBatchBlock, ds.size());
    std::vector<nas::CellSpec> cells;
    for (size_t i = 0; i < count; i++)
        cells.push_back(ds.records[i].spec);
    etpu::Rng rng(1);
    gnn::Predictor p;
    p.model.init({}, rng);
    gnn::PredictContext ctx;
    std::vector<double> preds(cells.size());
    ctx.predictRange(p, cells.data(), cells.size(), preds.data());
    for (auto _ : state) {
        ctx.predictRange(p, cells.data(), cells.size(), preds.data());
        benchmark::DoNotOptimize(preds[0]);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * cells.size()));
}
BENCHMARK(BM_GnnPredictionBatched)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 8 — learned performance model",
        "~96-98% average accuracy and >0.999 Spearman/Pearson "
        "correlation against simulator ground truth");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
