/**
 * @file
 * Search-quality benchmark: what fraction of the true Pareto front the
 * design-space search recovers per simulation budget. The space is the
 * full enumeration at a reduced vertex limit (move-closed, so local
 * moves stay meaningful and the exhaustive front is affordable); the
 * truth is exhaustiveFront() over that pool, and each measured point
 * runs a fresh seeded search at a fraction of the exhaustive budget.
 *
 * Two objective pairs are tracked: latency/energy (the acceptance
 * metric — on this simulator the two correlate strongly, so its front
 * is tiny and recovery means locating the jointly optimal cells) and
 * latency/accuracy (a genuine tradeoff with a ~30-point staircase, the
 * coverage-style score). Both optimizers run at every budget.
 *
 * The result is written as JSON so the repo can track the trajectory
 * across PRs: the committed BENCH_search.json at the repo root holds
 * the reference numbers, and scripts/check_bench_regression.py diffs
 * fresh CI runs against it (recovery_at_10pct is the headline metric).
 *
 * Usage: bench_search [--max-vertices N] [--seed N] [--threads N]
 *                     [--config N] [--out PATH]
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/json_out.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "nasbench/enumerator.hh"
#include "search/search.hh"

namespace
{

using namespace etpu;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr double budgetFractions[] = {0.02, 0.05, 0.10};

struct BudgetPoint
{
    double fraction = 0.0;
    uint64_t budget = 0;
    search::Algo algo = search::Algo::Annealing;
    uint64_t simEvals = 0;
    size_t found = 0;
    double recovery = 0.0;
    double seconds = 0.0;
};

struct Scenario
{
    std::string objectives;
    size_t trueFront = 0;
    double truthSeconds = 0.0;
    std::vector<BudgetPoint> points;
};

} // namespace

int
main(int argc, char **argv)
{
    int max_vertices = 5;
    int config = 0;
    uint64_t seed = 1;
    unsigned threads = 0;
    std::string out_path = "BENCH_search.json";
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                etpu_fatal("missing value for ", arg);
            return argv[++i];
        };
        auto next_count = [&]() {
            const char *text = next();
            auto n = parseInt(text);
            if (!n || *n < 0)
                etpu_fatal(arg, " expects a count >= 0, got ", text);
            return static_cast<uint64_t>(*n);
        };
        if (arg == "--max-vertices") {
            max_vertices = static_cast<int>(next_count());
        } else if (arg == "--seed") {
            seed = next_count();
        } else if (arg == "--config") {
            config = static_cast<int>(next_count());
        } else if (arg == "--threads") {
            constexpr uint64_t cap = std::numeric_limits<unsigned>::max();
            threads =
                static_cast<unsigned>(std::min(next_count(), cap));
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: bench_search [--max-vertices N] [--seed N] "
                   "[--threads N]\n"
                   "                    [--config N] [--out PATH]\n"
                   "Measures fraction-of-true-Pareto-front recovered "
                   "per simulation budget\n"
                   "(2/5/10% of exhaustive) on the move-closed "
                   "max-vertices sub-space, for\n"
                   "latency/energy and latency/accuracy, with both "
                   "optimizers.\n";
            return 0;
        } else {
            etpu_fatal("unknown argument ", arg);
        }
    }

    nas::SpaceLimits limits;
    limits.maxVertices = max_vertices;
    auto pool = nas::enumerateCells(limits, nullptr, threads);
    std::cout << "=== search front recovery ===\n"
              << "pool: " << fmtCount(pool.size())
              << " cells (max-vertices " << max_vertices
              << "), config V" << config + 1 << ", seed " << seed
              << "\n";
    search::SearchSpace space = search::makePoolSpace(pool, limits);

    std::vector<std::vector<search::Objective>> objective_sets = {
        {{search::Metric::Latency, false},
         {search::Metric::Energy, false}},
        {{search::Metric::Latency, false},
         {search::Metric::Accuracy, true}},
    };

    double recovery_at_10pct = 0.0; // headline: latency/energy, sa
    double total_search_seconds = 0.0;
    uint64_t total_sim_evals = 0;
    std::vector<Scenario> scenarios;
    for (size_t s = 0; s < objective_sets.size(); s++) {
        const auto &objectives = objective_sets[s];
        Scenario sc;
        sc.objectives =
            std::string(metricName(objectives[0].metric)) + "," +
            std::string(metricName(objectives[1].metric));
        Clock::time_point t0 = Clock::now();
        auto truth =
            search::exhaustiveFront(pool, objectives, config, threads);
        sc.truthSeconds = secondsSince(t0);
        sc.trueFront = truth.size();
        std::cout << "\n"
                  << sc.objectives << ": true front " << truth.size()
                  << " cells (" << fmtDouble(sc.truthSeconds, 2)
                  << " s exhaustive, " << fmtCount(pool.size())
                  << " sims)\n";
        for (double fraction : budgetFractions) {
            for (search::Algo algo : {search::Algo::Annealing,
                                      search::Algo::Evolution}) {
                BudgetPoint pt;
                pt.fraction = fraction;
                pt.algo = algo;
                pt.budget = std::max<uint64_t>(
                    1,
                    static_cast<uint64_t>(
                        fraction * static_cast<double>(pool.size())));
                search::SearchOptions opts;
                opts.seed = seed;
                opts.budget = pt.budget;
                opts.algo = algo;
                opts.objectives = objectives;
                opts.config = config;
                opts.threads = threads;
                t0 = Clock::now();
                search::SearchResult res =
                    search::runSearch(space, opts);
                pt.seconds = secondsSince(t0);
                pt.simEvals = res.stats.simEvals;
                pt.found = res.front.size();
                pt.recovery = search::frontRecovery(res.front, truth);
                total_search_seconds += pt.seconds;
                total_sim_evals += pt.simEvals;
                std::cout << "  " << fmtDouble(fraction * 100, 0)
                          << "% budget (" << pt.budget << " sims, "
                          << search::algoName(algo) << "): recovery "
                          << fmtDouble(pt.recovery, 3) << " ("
                          << pt.found << " found), "
                          << fmtDouble(pt.seconds, 3) << " s\n";
                if (s == 0 && fraction == 0.10 &&
                    algo == search::Algo::Annealing) {
                    recovery_at_10pct = pt.recovery;
                }
                sc.points.push_back(pt);
            }
        }
        scenarios.push_back(std::move(sc));
    }

    std::ofstream json(out_path, std::ios::trunc);
    if (!json)
        etpu_fatal("cannot write bench result to ", out_path);
    json << "{\n"
         << "  \"bench_schema\": 1,\n"
         << "  \"bench\": \"search\",\n"
         << "  \"pool_cells\": " << pool.size() << ",\n"
         << "  \"max_vertices\": " << max_vertices << ",\n"
         << "  \"config\": " << config << ",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"recovery_at_10pct\": "
         << fmtDouble(recovery_at_10pct, 4) << ",\n"
         << "  \"search_evals_per_sec\": "
         << fmtDouble(total_search_seconds > 0.0
                          ? static_cast<double>(total_sim_evals) /
                                total_search_seconds
                          : 0.0,
                      1)
         << ",\n"
         << "  \"scenarios\": [\n";
    for (size_t s = 0; s < scenarios.size(); s++) {
        const Scenario &sc = scenarios[s];
        json << "    {\n"
             << "      \"objectives\": " << jsonQuote(sc.objectives)
             << ",\n"
             << "      \"true_front\": " << sc.trueFront << ",\n"
             << "      \"exhaustive_seconds\": "
             << fmtDouble(sc.truthSeconds, 3) << ",\n"
             << "      \"points\": [\n";
        for (size_t p = 0; p < sc.points.size(); p++) {
            const BudgetPoint &pt = sc.points[p];
            json << "        {\"budget_fraction\": "
                 << fmtDouble(pt.fraction, 2)
                 << ", \"budget\": " << pt.budget << ", \"algo\": "
                 << jsonQuote(search::algoName(pt.algo))
                 << ", \"sim_evals\": " << pt.simEvals
                 << ", \"found\": " << pt.found
                 << ", \"recovery\": " << fmtDouble(pt.recovery, 4)
                 << ", \"seconds\": " << fmtDouble(pt.seconds, 3)
                 << "}" << (p + 1 < sc.points.size() ? "," : "")
                 << "\n";
        }
        json << "      ]\n    }"
             << (s + 1 < scenarios.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.flush();
    if (!json)
        etpu_fatal("failed writing bench result to ", out_path);
    std::cout << "\nresult written to " << out_path << "\n";
    return 0;
}
