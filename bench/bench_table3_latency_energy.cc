/**
 * @file
 * Table 3: min/max/avg inference latency and energy over the models
 * with >= 70% mean validation accuracy, per configuration, with the
 * accuracy of the extreme models in parentheses (as in the paper).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

struct PaperRow
{
    double minLat, maxLat, avgLat;
    double minEn, maxEn, avgEn; //!< <0 means N/A
};

const PaperRow paperRows[3] = {
    {0.079111, 5.676561, 0.9631, 0.198351, 23.807941, 4.252673},
    {0.074647, 5.653848, 1.03485, 0.170954, 23.462845, 3.9127185},
    {0.074647, 5.666214, 1.0655, -1, -1, -1},
};

void
report()
{
    const auto &idx = bench::index();
    const auto &filtered = bench::filteredRows();
    AsciiTable t("Table 3 — latency/energy summary (accuracy >= 70%)");
    t.header({"Metric", "V1", "V2", "V3"});

    std::vector<std::string> rows[6];
    std::vector<double> lat, en;
    for (int c = 0; c < 3; c++) {
        idx.gather(query::latency(c), filtered, lat);
        idx.gather(query::energy(c), filtered, en);
        auto ls = stats::summarize(lat);
        auto es = stats::summarize(en);
        auto acc_at = [&](size_t i) {
            double acc = idx.value({query::MetricKind::Accuracy, 0},
                                   filtered[i]);
            return " (" + fmtDouble(acc * 100, 2) + "%)";
        };
        const PaperRow &p = paperRows[c];
        rows[0].push_back(bench::vsPaper(ls.min, p.minLat, 6) +
                          acc_at(ls.argmin));
        rows[1].push_back(bench::vsPaper(ls.max, p.maxLat, 6) +
                          acc_at(ls.argmax));
        rows[2].push_back(bench::vsPaper(ls.mean, p.avgLat, 4));
        bool na = p.minEn < 0;
        rows[3].push_back(na ? fmtDouble(es.min, 6) + " (paper N/A)"
                             : bench::vsPaper(es.min, p.minEn, 6) +
                                   acc_at(es.argmin));
        rows[4].push_back(na ? fmtDouble(es.max, 6) + " (paper N/A)"
                             : bench::vsPaper(es.max, p.maxEn, 6) +
                                   acc_at(es.argmax));
        rows[5].push_back(na ? fmtDouble(es.mean, 4) + " (paper N/A)"
                             : bench::vsPaper(es.mean, p.avgEn, 4));
    }
    const char *names[6] = {"Min. Latency (ms)", "Max. Latency (ms)",
                            "Avg. Latency (ms)", "Min. Energy (mJ)",
                            "Max. Energy (mJ)",  "Avg. Energy (mJ)"};
    for (int m = 0; m < 6; m++) {
        std::vector<std::string> cells = {names[m]};
        cells.insert(cells.end(), rows[m].begin(), rows[m].end());
        t.row(cells);
    }
    t.print(std::cout);
}

void
BM_SummarizeFilteredRecords(benchmark::State &state)
{
    const auto &idx = bench::index();
    const auto &rows = bench::filteredRows();
    const auto &lat = idx.column(query::latency(0));
    for (auto _ : state) {
        double sum = 0;
        for (uint32_t row : rows)
            sum += lat[row];
        benchmark::DoNotOptimize(sum);
    }
    state.counters["records"] = static_cast<double>(rows.size());
}
BENCHMARK(BM_SummarizeFilteredRecords)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 3 — latency/energy summary",
        "V2 delivers the highest accuracy (94.33%) at lower max "
        "latency; avg latency orders V1 < V2 < V3");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
