/**
 * @file
 * Figure 6: latency-vs-energy relation for V1 and V2 over the >=70%
 * accuracy models. The relation is linear; below ~3 ms V2's cloud sits
 * lower (smaller static/SRAM footprint), above it V1's does (parameter
 * caching avoids the DRAM streaming energy).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/csv.hh"
#include "stats/linreg.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &recs = bench::filteredRecords();

    AsciiTable t("Figure 6 — energy vs latency (V1, V2)");
    t.header({"Config", "slope (mJ/ms)", "intercept (mJ)", "R^2"});
    for (int c = 0; c < 2; c++) {
        std::vector<double> lat, en;
        for (const auto *r : recs) {
            lat.push_back(r->latencyMs[static_cast<size_t>(c)]);
            en.push_back(r->energyMj[static_cast<size_t>(c)]);
        }
        auto fit = stats::fitLinear(lat, en);
        t.row({bench::configName(c), fmtDouble(fit.slope, 3),
               fmtDouble(fit.intercept, 3), fmtDouble(fit.r2, 4)});
    }
    t.print(std::cout);

    // Binned means: who has lower energy at the same latency?
    AsciiTable cross("Energy at equal latency (binned means)");
    cross.header({"Latency bin", "V1 mean mJ", "V2 mean mJ",
                  "lower-energy config"});
    const double edges[7] = {0, 1, 2, 3, 4, 5, 10};
    for (int b = 0; b < 6; b++) {
        double sum[2] = {};
        uint64_t n[2] = {};
        for (const auto *r : recs) {
            for (int c = 0; c < 2; c++) {
                double lat = r->latencyMs[static_cast<size_t>(c)];
                if (lat >= edges[b] && lat < edges[b + 1]) {
                    sum[c] += r->energyMj[static_cast<size_t>(c)];
                    n[c]++;
                }
            }
        }
        if (!n[0] || !n[1])
            continue;
        double v1 = sum[0] / static_cast<double>(n[0]);
        double v2 = sum[1] / static_cast<double>(n[1]);
        cross.row({fmtDouble(edges[b], 0) + "-" +
                       fmtDouble(edges[b + 1], 0) + " ms",
                   fmtDouble(v1, 2), fmtDouble(v2, 2),
                   v1 < v2 ? "V1" : "V2"});
    }
    cross.print(std::cout);
    std::cout << "paper: V2 lower below ~3 ms, V1 lower above\n";

    CsvWriter csv(bench::csvDir() + "/fig6_latency_energy.csv");
    csv.row({"config", "latency_ms", "energy_mj"});
    size_t stride = std::max<size_t>(1, recs.size() / 20000);
    for (size_t i = 0; i < recs.size(); i += stride) {
        for (int c = 0; c < 2; c++) {
            csv.row({bench::configName(c),
                     fmtDouble(recs[i]->latencyMs[static_cast<size_t>(c)], 5),
                     fmtDouble(recs[i]->energyMj[static_cast<size_t>(c)], 5)});
        }
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig6_latency_energy.csv\n";
}

void
BM_LinearFit(benchmark::State &state)
{
    const auto &recs = bench::filteredRecords();
    std::vector<double> lat, en;
    for (const auto *r : recs) {
        lat.push_back(r->latencyMs[0]);
        en.push_back(r->energyMj[0]);
    }
    for (auto _ : state) {
        auto fit = stats::fitLinear(lat, en);
        benchmark::DoNotOptimize(fit.slope);
    }
}
BENCHMARK(BM_LinearFit)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 6 — latency vs energy",
        "linear latency/energy relation; V2 cheaper for fast models, "
        "V1 cheaper at equal latency for slow models");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
