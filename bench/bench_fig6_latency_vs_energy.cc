/**
 * @file
 * Figure 6: latency-vs-energy relation for V1 and V2 over the >=70%
 * accuracy models. The relation is linear; below ~3 ms V2's cloud sits
 * lower (smaller static/SRAM footprint), above it V1's does (parameter
 * caching avoids the DRAM streaming energy).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/csv.hh"
#include "stats/linreg.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &idx = bench::index();
    const auto &rows = bench::filteredRows();

    AsciiTable t("Figure 6 — energy vs latency (V1, V2)");
    t.header({"Config", "slope (mJ/ms)", "intercept (mJ)", "R^2"});
    std::vector<double> lat, en;
    for (int c = 0; c < 2; c++) {
        idx.gather(query::latency(c), rows, lat);
        idx.gather(query::energy(c), rows, en);
        auto fit = stats::fitLinear(lat, en);
        t.row({bench::configName(c), fmtDouble(fit.slope, 3),
               fmtDouble(fit.intercept, 3), fmtDouble(fit.r2, 4)});
    }
    t.print(std::cout);

    // Binned means: who has lower energy at the same latency?
    const std::vector<double> edges = {0, 1, 2, 3, 4, 5, 10};
    query::GroupAggregate binned[2];
    for (int c = 0; c < 2; c++) {
        binned[c] = idx.bucketBy(query::latency(c), edges,
                                 {query::energy(c)},
                                 &bench::accuracyFilterQuery());
    }
    AsciiTable cross("Energy at equal latency (binned means)");
    cross.header({"Latency bin", "V1 mean mJ", "V2 mean mJ",
                  "lower-energy config"});
    for (size_t b = 0; b + 1 < edges.size(); b++) {
        if (!binned[0].counts[b] || !binned[1].counts[b])
            continue;
        double v1 = binned[0].mean(0, b);
        double v2 = binned[1].mean(0, b);
        cross.row({fmtDouble(edges[b], 0) + "-" +
                       fmtDouble(edges[b + 1], 0) + " ms",
                   fmtDouble(v1, 2), fmtDouble(v2, 2),
                   v1 < v2 ? "V1" : "V2"});
    }
    cross.print(std::cout);
    std::cout << "paper: V2 lower below ~3 ms, V1 lower above\n";

    CsvWriter csv(bench::csvDir() + "/fig6_latency_energy.csv");
    csv.row({"config", "latency_ms", "energy_mj"});
    size_t stride = std::max<size_t>(1, rows.size() / 20000);
    for (size_t i = 0; i < rows.size(); i += stride) {
        for (int c = 0; c < 2; c++) {
            csv.row({bench::configName(c),
                     fmtDouble(idx.value(query::latency(c), rows[i]), 5),
                     fmtDouble(idx.value(query::energy(c), rows[i]), 5)});
        }
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig6_latency_energy.csv\n";
}

void
BM_LinearFit(benchmark::State &state)
{
    const auto &idx = bench::index();
    std::vector<double> lat, en;
    idx.gather(query::latency(0), bench::filteredRows(), lat);
    idx.gather(query::energy(0), bench::filteredRows(), en);
    for (auto _ : state) {
        auto fit = stats::fitLinear(lat, en);
        benchmark::DoNotOptimize(fit.slope);
    }
}
BENCHMARK(BM_LinearFit)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 6 — latency vs energy",
        "linear latency/energy relation; V2 cheaper for fast models, "
        "V1 cheaper at equal latency for slow models");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
