/**
 * @file
 * Figure 9: latency vs accuracy for the five highest-accuracy models,
 * annotated with the configuration that wins each (the paper's
 * dashed-line regions read V2, V1, V2, V1).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &ds = bench::dataset();
    std::vector<const nas::ModelRecord *> sorted;
    sorted.reserve(ds.size());
    for (const auto &r : ds.records)
        sorted.push_back(&r);
    std::partial_sort(sorted.begin(), sorted.begin() + 5, sorted.end(),
                      [](const auto *a, const auto *b) {
                          return a->accuracy > b->accuracy;
                      });

    AsciiTable t("Figure 9 — top-5 accuracy models");
    t.header({"Rank", "Accuracy %", "V1 ms", "V2 ms", "V3 ms",
              "Winner"});
    for (int i = 0; i < 5; i++) {
        const auto *r = sorted[static_cast<size_t>(i)];
        t.row({std::to_string(i + 1),
               fmtDouble(r->accuracy * 100, 3),
               fmtDouble(r->latencyMs[0], 4),
               fmtDouble(r->latencyMs[1], 4),
               fmtDouble(r->latencyMs[2], 4),
               bench::configName(bench::winnerIndex(*r))});
    }
    t.print(std::cout);
    std::cout << "paper's winner sequence along the accuracy "
                 "frontier: V2, V1, V2, V1\n";
}

void
BM_TopKSelection(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        std::vector<const nas::ModelRecord *> sorted;
        sorted.reserve(ds.size());
        for (const auto &r : ds.records)
            sorted.push_back(&r);
        std::partial_sort(sorted.begin(), sorted.begin() + 5,
                          sorted.end(),
                          [](const auto *a, const auto *b) {
                              return a->accuracy > b->accuracy;
                          });
        benchmark::DoNotOptimize(sorted[0]);
    }
}
BENCHMARK(BM_TopKSelection)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 9 — top-5 frontier",
        "among the five most accurate models the lowest-latency config "
        "alternates between V2 and V1, leaving headroom to trade tiny "
        "accuracy for large latency wins");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
