/**
 * @file
 * Figure 9: latency vs accuracy for the five highest-accuracy models,
 * annotated with the configuration that wins each (the paper's
 * dashed-line regions read V2, V1, V2, V1).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &idx = bench::index();
    std::vector<uint32_t> top;
    idx.topK({query::MetricKind::Accuracy, 0}, 5,
             query::SortOrder::Descending, top);

    AsciiTable t("Figure 9 — top-5 accuracy models");
    t.header({"Rank", "Accuracy %", "V1 ms", "V2 ms", "V3 ms",
              "Winner"});
    for (size_t i = 0; i < top.size(); i++) {
        uint32_t row = top[i];
        t.row({std::to_string(i + 1),
               fmtDouble(idx.value({query::MetricKind::Accuracy, 0},
                                   row) * 100, 3),
               fmtDouble(idx.value(query::latency(0), row), 4),
               fmtDouble(idx.value(query::latency(1), row), 4),
               fmtDouble(idx.value(query::latency(2), row), 4),
               bench::configName(idx.winner(row))});
    }
    t.print(std::cout);
    std::cout << "paper's winner sequence along the accuracy "
                 "frontier: V2, V1, V2, V1\n";
}

void
BM_TopKSelection(benchmark::State &state)
{
    const auto &idx = bench::index();
    std::vector<uint32_t> top;
    for (auto _ : state) {
        idx.topK({query::MetricKind::Accuracy, 0}, 5,
                 query::SortOrder::Descending, top,
                 &bench::accuracyFilterQuery());
        benchmark::DoNotOptimize(top.data());
    }
}
BENCHMARK(BM_TopKSelection)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 9 — top-5 frontier",
        "among the five most accurate models the lowest-latency config "
        "alternates between V2 and V1, leaving headroom to trade tiny "
        "accuracy for large latency wins");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
