/**
 * @file
 * Table 4: latency and energy of the highest-accuracy model (95.055%
 * after 108 epochs) on the three configurations.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

const double paperLatency[3] = {4.633768, 4.185697, 4.535305};
const double paperEnergy[2] = {19.894033, 19.745373};

void
report()
{
    const auto &ds = bench::dataset();
    const auto &best = ds.records[ds.bestAccuracyIndex()];
    std::cout << "best model: " << best.spec.str() << "\n"
              << "accuracy: " << fmtDouble(best.accuracy * 100, 3)
              << "% (paper 95.055%)   params: " << fmtCount(best.params)
              << " (paper 41,557,898)\n\n";

    AsciiTable t("Table 4 — best-accuracy model");
    t.header({"Metric", "V1", "V2", "V3"});
    std::vector<std::string> lat = {"Latency (ms)"};
    std::vector<std::string> en = {"Energy (mJ)"};
    for (int c = 0; c < 3; c++) {
        lat.push_back(bench::vsPaper(
            best.latencyMs[static_cast<size_t>(c)], paperLatency[c], 4));
        en.push_back(
            c < 2 ? bench::vsPaper(best.energyMj[static_cast<size_t>(c)],
                                   paperEnergy[c], 4)
                  : fmtDouble(best.energyMj[2], 4) + " (paper N/A)");
    }
    t.row(lat);
    t.row(en);
    t.print(std::cout);

    int winner = bench::winnerIndex(best);
    std::cout << "lowest latency: " << bench::configName(winner)
              << " (paper: V2)\n";
}

void
BM_SimulateBestModel(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    const auto &best = ds.records[ds.bestAccuracyIndex()];
    sim::Simulator v2(arch::configV2());
    nas::Network net = nas::buildNetwork(best.spec);
    for (auto _ : state) {
        auto r = v2.run(net, &best.spec);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_SimulateBestModel)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 4 — best-accuracy model",
        "for the 95.055%-accuracy model, V2 yields the lowest latency "
        "(4.19 ms, ~10% below V1)");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
