/**
 * @file
 * Ablation: parameter caching on vs off (the section-3 optimization;
 * the paper always simulates with it enabled). We re-simulate a
 * deterministic sample of cells plus the showcased anchors with the
 * optimization disabled and report the slowdown per configuration and
 * model-size band.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/parallel_for.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &ds = bench::dataset();
    // Deterministic sample across the size spectrum.
    std::vector<const nas::ModelRecord *> sample;
    size_t stride = std::max<size_t>(1, ds.size() / 2000);
    for (size_t i = 0; i < ds.size(); i += stride)
        sample.push_back(&ds.records[i]);

    AsciiTable t("Ablation — parameter caching");
    t.header({"Config", "band (params)", "cached mean ms",
              "uncached mean ms", "slowdown"});
    for (int c = 0; c < 3; c++) {
        auto cfg = arch::allConfigs()[static_cast<size_t>(c)];
        cfg.compiler.parameterCaching = false;
        sim::Simulator uncached(cfg);

        const double edges_m[4] = {0, 5, 30, 51};
        std::array<double, 3> cached_sum = {};
        std::array<double, 3> uncached_sum = {};
        std::array<uint64_t, 3> n = {};
        std::vector<double> uncached_lat(sample.size());
        parallelFor(0, sample.size(), [&](size_t i, unsigned) {
            uncached_lat[i] =
                uncached.runCell(sample[i]->spec).latencyMs;
        });
        for (size_t i = 0; i < sample.size(); i++) {
            double m =
                static_cast<double>(sample[i]->params) / 1e6;
            for (int b = 0; b < 3; b++) {
                if (m >= edges_m[b] && m < edges_m[b + 1]) {
                    cached_sum[static_cast<size_t>(b)] +=
                        sample[i]->latencyMs[static_cast<size_t>(c)];
                    uncached_sum[static_cast<size_t>(b)] +=
                        uncached_lat[i];
                    n[static_cast<size_t>(b)]++;
                }
            }
        }
        const char *bands[3] = {"< 5M", "5M - 30M", "> 30M"};
        for (int b = 0; b < 3; b++) {
            if (!n[static_cast<size_t>(b)])
                continue;
            double ca = cached_sum[static_cast<size_t>(b)] /
                        static_cast<double>(n[static_cast<size_t>(b)]);
            double un = uncached_sum[static_cast<size_t>(b)] /
                        static_cast<double>(n[static_cast<size_t>(b)]);
            t.row({bench::configName(c), bands[b], fmtDouble(ca, 3),
                   fmtDouble(un, 3), fmtDouble(un / ca, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "expected: V1 (largest cache) benefits most; beyond "
                 "the cache size caching has diminishing returns "
                 "(paper section 6.1)\n";
}

void
BM_SimulateUncached(benchmark::State &state)
{
    auto cfg = arch::configV1();
    cfg.compiler.parameterCaching = false;
    sim::Simulator sim(cfg);
    const auto &cell = nas::anchorCells()[0].cell;
    nas::Network net = nas::buildNetwork(cell);
    for (auto _ : state) {
        auto r = sim.run(net, &cell);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_SimulateUncached)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Ablation — parameter caching",
        "caching parameters on-chip avoids re-streaming the model "
        "every inference (paper section 3)");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
