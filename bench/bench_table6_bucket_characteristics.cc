/**
 * @file
 * Table 6: model characteristics of the first (V1 wins) vs the last
 * (V3 wins) winner bucket: average op counts, graph depth and
 * trainable parameters.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &idx = bench::index();
    query::GroupAggregate buckets = idx.groupBy(
        {query::MetricKind::Winner, 0},
        {{query::MetricKind::Conv3x3, 0},
         {query::MetricKind::Conv1x1, 0},
         {query::MetricKind::MaxPool, 0},
         {query::MetricKind::Depth, 0},
         {query::MetricKind::Params, 0}});
    auto v1 = buckets.groupOf(0.0);
    auto v3 = buckets.groupOf(2.0);
    auto avg = [&](const std::optional<size_t> &g, size_t agg) {
        return g ? buckets.mean(agg, *g) : 0.0;
    };

    AsciiTable t("Table 6 — first vs last bucket characteristics");
    t.header({"Characteristic", "Latency(V1)<= (ours/paper)",
              "Latency(V3)<= (ours/paper)"});
    t.row({"Avg. # of Conv 3x3", bench::vsPaper(avg(v1, 0), 1.53, 2),
           bench::vsPaper(avg(v3, 0), 0.78, 2)});
    t.row({"Avg. # of Conv 1x1", bench::vsPaper(avg(v1, 1), 1.65, 2),
           bench::vsPaper(avg(v3, 1), 2.17, 2)});
    t.row({"Avg. # of MaxPool 3x3",
           bench::vsPaper(avg(v1, 2), 1.66, 2),
           bench::vsPaper(avg(v3, 2), 1.77, 2)});
    t.row({"Avg. Graph Depth", bench::vsPaper(avg(v1, 3), 4.96, 2),
           bench::vsPaper(avg(v3, 3), 4.64, 2)});
    t.row({"Avg. # of Trainable Parameters",
           bench::vsPaper(avg(v1, 4), 7054471.34, 0),
           bench::vsPaper(avg(v3, 4), 1417485.36, 0)});
    t.print(std::cout);
}

void
BM_BucketCharacterization(benchmark::State &state)
{
    const auto &idx = bench::index();
    query::Filter v3_only;
    v3_only.where({query::MetricKind::Winner, 0}, query::CompareOp::Eq,
                  2.0);
    for (auto _ : state) {
        query::GroupAggregate a =
            idx.groupBy({query::MetricKind::Winner, 0},
                        {{query::MetricKind::Params, 0}}, &v3_only);
        benchmark::DoNotOptimize(a.sums[0].data());
    }
}
BENCHMARK(BM_BucketCharacterization)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 6 — bucket characteristics",
        "the V1 bucket holds conv3x3-rich, parameter-heavy models; the "
        "V3 bucket holds small models rich in conv1x1/maxpool");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
