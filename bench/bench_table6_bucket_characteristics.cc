/**
 * @file
 * Table 6: model characteristics of the first (V1 wins) vs the last
 * (V3 wins) winner bucket: average op counts, graph depth and
 * trainable parameters.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

struct Acc
{
    double c3 = 0, c1 = 0, mp = 0, depth = 0, params = 0;
    uint64_t n = 0;

    void
    add(const nas::ModelRecord &r)
    {
        c3 += r.numConv3x3;
        c1 += r.numConv1x1;
        mp += r.numMaxPool;
        depth += r.depth;
        params += static_cast<double>(r.params);
        n++;
    }
};

void
report()
{
    const auto &ds = bench::dataset();
    Acc v1_bucket, v3_bucket;
    for (const auto &r : ds.records) {
        int w = bench::winnerIndex(r);
        if (w == 0)
            v1_bucket.add(r);
        else if (w == 2)
            v3_bucket.add(r);
    }
    auto avg = [](double sum, uint64_t n) {
        return n ? sum / static_cast<double>(n) : 0.0;
    };

    AsciiTable t("Table 6 — first vs last bucket characteristics");
    t.header({"Characteristic", "Latency(V1)<= (ours/paper)",
              "Latency(V3)<= (ours/paper)"});
    t.row({"Avg. # of Conv 3x3",
           bench::vsPaper(avg(v1_bucket.c3, v1_bucket.n), 1.53, 2),
           bench::vsPaper(avg(v3_bucket.c3, v3_bucket.n), 0.78, 2)});
    t.row({"Avg. # of Conv 1x1",
           bench::vsPaper(avg(v1_bucket.c1, v1_bucket.n), 1.65, 2),
           bench::vsPaper(avg(v3_bucket.c1, v3_bucket.n), 2.17, 2)});
    t.row({"Avg. # of MaxPool 3x3",
           bench::vsPaper(avg(v1_bucket.mp, v1_bucket.n), 1.66, 2),
           bench::vsPaper(avg(v3_bucket.mp, v3_bucket.n), 1.77, 2)});
    t.row({"Avg. Graph Depth",
           bench::vsPaper(avg(v1_bucket.depth, v1_bucket.n), 4.96, 2),
           bench::vsPaper(avg(v3_bucket.depth, v3_bucket.n), 4.64, 2)});
    t.row({"Avg. # of Trainable Parameters",
           bench::vsPaper(avg(v1_bucket.params, v1_bucket.n),
                          7054471.34, 0),
           bench::vsPaper(avg(v3_bucket.params, v3_bucket.n),
                          1417485.36, 0)});
    t.print(std::cout);
}

void
BM_BucketCharacterization(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        Acc a;
        for (const auto &r : ds.records) {
            if (bench::winnerIndex(r) == 2)
                a.add(r);
        }
        benchmark::DoNotOptimize(a.params);
    }
}
BENCHMARK(BM_BucketCharacterization)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 6 — bucket characteristics",
        "the V1 bucket holds conv3x3-rich, parameter-heavy models; the "
        "V3 bucket holds small models rich in conv1x1/maxpool");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
