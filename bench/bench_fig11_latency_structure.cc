/**
 * @file
 * Figure 11: latency vs graph depth (top row) and width (bottom row)
 * for each configuration. Latency grows with depth — except a dip at
 * depths 4-5 where models average fewer parameters (Table 7) — and
 * falls with width thanks to the output-channel split across parallel
 * branches.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

void
printAxis(const char *name, bool by_width)
{
    const auto &recs = bench::filteredRecords();
    std::map<int, std::array<std::vector<double>, 3>> groups;
    for (const auto *r : recs) {
        int key = by_width ? r->width : r->depth;
        for (int c = 0; c < 3; c++) {
            groups[key][static_cast<size_t>(c)].push_back(
                r->latencyMs[static_cast<size_t>(c)]);
        }
    }
    AsciiTable t(std::string("Figure 11 — latency vs ") + name);
    t.header({name, "# models", "V1 mean ms", "V2 mean ms",
              "V3 mean ms"});
    for (const auto &[key, lat] : groups) {
        t.row({std::to_string(key), fmtCount(lat[0].size()),
               fmtDouble(stats::summarize(lat[0]).mean, 3),
               fmtDouble(stats::summarize(lat[1]).mean, 3),
               fmtDouble(stats::summarize(lat[2]).mean, 3)});
    }
    t.print(std::cout);
}

void
report()
{
    printAxis("depth", false);
    std::cout << "paper: latency rises with depth, dipping at 4-5 "
                 "(fewer parameters, Table 7)\n\n";
    printAxis("width", true);
    std::cout << "paper: wider graphs run faster (more parallelism, "
                 "split channels)\n";
}

void
BM_GroupByStructure(benchmark::State &state)
{
    const auto &recs = bench::filteredRecords();
    for (auto _ : state) {
        double sums[16] = {};
        for (const auto *r : recs)
            sums[std::min<int>(r->width, 15)] += r->latencyMs[1];
        benchmark::DoNotOptimize(sums[5]);
    }
}
BENCHMARK(BM_GroupByStructure)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 11 — latency vs graph structure",
        "depth increases latency (with a dip at 4-5); width decreases "
        "it on every configuration");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
