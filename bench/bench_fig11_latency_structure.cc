/**
 * @file
 * Figure 11: latency vs graph depth (top row) and width (bottom row)
 * for each configuration. Latency grows with depth — except a dip at
 * depths 4-5 where models average fewer parameters (Table 7) — and
 * falls with width thanks to the output-channel split across parallel
 * branches.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

void
printAxis(const char *name, query::Metric key)
{
    const auto &idx = bench::index();
    query::GroupAggregate groups =
        idx.groupBy(key,
                    {query::latency(0), query::latency(1),
                     query::latency(2)},
                    &bench::accuracyFilterQuery());

    AsciiTable t(std::string("Figure 11 — latency vs ") + name);
    t.header({name, "# models", "V1 mean ms", "V2 mean ms",
              "V3 mean ms"});
    for (size_t g = 0; g < groups.groups(); g++) {
        t.row({std::to_string(static_cast<int>(groups.keys[g])),
               fmtCount(groups.counts[g]),
               fmtDouble(groups.mean(0, g), 3),
               fmtDouble(groups.mean(1, g), 3),
               fmtDouble(groups.mean(2, g), 3)});
    }
    t.print(std::cout);
}

void
report()
{
    printAxis("depth", {query::MetricKind::Depth, 0});
    std::cout << "paper: latency rises with depth, dipping at 4-5 "
                 "(fewer parameters, Table 7)\n\n";
    printAxis("width", {query::MetricKind::Width, 0});
    std::cout << "paper: wider graphs run faster (more parallelism, "
                 "split channels)\n";
}

void
BM_GroupByStructure(benchmark::State &state)
{
    const auto &idx = bench::index();
    for (auto _ : state) {
        query::GroupAggregate groups =
            idx.groupBy({query::MetricKind::Width, 0},
                        {query::latency(1)},
                        &bench::accuracyFilterQuery());
        benchmark::DoNotOptimize(groups.counts.data());
    }
}
BENCHMARK(BM_GroupByStructure)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 11 — latency vs graph structure",
        "depth increases latency (with a dip at 4-5); width decreases "
        "it on every configuration");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
