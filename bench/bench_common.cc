#include "bench_common.hh"

#include <filesystem>
#include <iostream>
#include <unordered_map>

#include "common/logging.hh"

namespace etpu::bench
{

namespace
{
/** Whether some bench path already forced the in-memory dataset. */
bool datasetRequested = false;
} // namespace

const nas::Dataset &
dataset()
{
    datasetRequested = true;
    return pipeline::sharedDataset();
}

const query::DatasetIndex &
index()
{
    static const query::DatasetIndex idx =
        query::DatasetIndex::build(dataset());
    return idx;
}

const query::Filter &
accuracyFilterQuery()
{
    static const query::Filter f =
        query::Filter().where({query::MetricKind::Accuracy, 0},
                              query::CompareOp::Ge,
                              static_cast<float>(accuracyFilter));
    return f;
}

const std::vector<uint32_t> &
filteredRows()
{
    static const std::vector<uint32_t> rows = [] {
        std::vector<uint32_t> r;
        index().filterRows(accuracyFilterQuery(), r);
        return r;
    }();
    return rows;
}

void
forEachRecord(const std::function<void(const nas::ModelRecord &)> &fn)
{
    if (!datasetRequested) {
        std::string path = pipeline::resolvedCachePath();
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            size_t delivered = 0;
            bool clean = nas::Dataset::loadStreaming(
                path, [&](const nas::ModelRecord &r) {
                    delivered++;
                    fn(r);
                });
            if (clean)
                return;
            if (delivered) {
                // Some shards already reached fn and re-walking the
                // full dataset would double-count, so a bench built on
                // partial data must not report numbers with exit 0.
                etpu_fatal("dataset cache ", path, " is damaged and ",
                           delivered, " records already streamed; "
                           "delete it or rerun etpu_build_dataset "
                           "(--resume keeps finished shards)");
            }
            // Nothing delivered: fall through to the in-memory build,
            // which rebuilds the cache from scratch.
        }
    }
    for (const auto &r : dataset().records)
        fn(r);
}

const std::vector<const nas::ModelRecord *> &
filteredRecords()
{
    static const std::vector<const nas::ModelRecord *> recs =
        dataset().filterByAccuracy(accuracyFilter);
    return recs;
}

int
winnerIndex(const nas::ModelRecord &r)
{
    int best = 0;
    for (int c = 1; c < nas::numAccelerators; c++) {
        if (r.latencyMs[static_cast<size_t>(c)] <
            r.latencyMs[static_cast<size_t>(best)]) {
            best = c;
        }
    }
    return best;
}

namespace
{

const std::unordered_map<Hash128, const nas::ModelRecord *> &
fingerprintIndex()
{
    static const auto index = [] {
        std::unordered_map<Hash128, const nas::ModelRecord *> map;
        map.reserve(dataset().size());
        for (const auto &r : dataset().records)
            map.emplace(r.spec.fingerprint(), &r);
        return map;
    }();
    return index;
}

} // namespace

const nas::ModelRecord *
findRecord(const Hash128 &fingerprint)
{
    auto it = fingerprintIndex().find(fingerprint);
    return it == fingerprintIndex().end() ? nullptr : it->second;
}

const nas::ModelRecord *
anchorRecord(size_t anchor_index)
{
    const auto &anchors = nas::anchorCells();
    if (anchor_index >= anchors.size())
        return nullptr;
    return findRecord(anchors[anchor_index].cell.fingerprint());
}

void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout << "\n=== " << experiment << " ===\n"
              << "paper: " << claim << "\n"
              << "dataset: " << fmtCount(dataset().size())
              << " models (" << fmtCount(filteredRecords().size())
              << " with accuracy >= 70%)\n\n";
}

std::string
vsPaper(double ours, double paper, int precision)
{
    return fmtDouble(ours, precision) + " (paper " +
           fmtDouble(paper, precision) + ")";
}

std::string
configName(int c)
{
    return arch::allConfigs()[static_cast<size_t>(c)].name;
}

std::string
csvDir()
{
    std::string dir = "bench_csv";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

} // namespace etpu::bench
