#include "bench_common.hh"

#include <filesystem>
#include <iostream>
#include <unordered_map>

namespace etpu::bench
{

const nas::Dataset &
dataset()
{
    return pipeline::sharedDataset();
}

const std::vector<const nas::ModelRecord *> &
filteredRecords()
{
    static const std::vector<const nas::ModelRecord *> recs =
        dataset().filterByAccuracy(accuracyFilter);
    return recs;
}

int
winnerIndex(const nas::ModelRecord &r)
{
    int best = 0;
    for (int c = 1; c < nas::numAccelerators; c++) {
        if (r.latencyMs[static_cast<size_t>(c)] <
            r.latencyMs[static_cast<size_t>(best)]) {
            best = c;
        }
    }
    return best;
}

namespace
{

const std::unordered_map<Hash128, const nas::ModelRecord *> &
fingerprintIndex()
{
    static const auto index = [] {
        std::unordered_map<Hash128, const nas::ModelRecord *> map;
        map.reserve(dataset().size());
        for (const auto &r : dataset().records)
            map.emplace(r.spec.fingerprint(), &r);
        return map;
    }();
    return index;
}

} // namespace

const nas::ModelRecord *
findRecord(const Hash128 &fingerprint)
{
    auto it = fingerprintIndex().find(fingerprint);
    return it == fingerprintIndex().end() ? nullptr : it->second;
}

const nas::ModelRecord *
anchorRecord(size_t anchor_index)
{
    const auto &anchors = nas::anchorCells();
    if (anchor_index >= anchors.size())
        return nullptr;
    return findRecord(anchors[anchor_index].cell.fingerprint());
}

void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout << "\n=== " << experiment << " ===\n"
              << "paper: " << claim << "\n"
              << "dataset: " << fmtCount(dataset().size())
              << " models (" << fmtCount(filteredRecords().size())
              << " with accuracy >= 70%)\n\n";
}

std::string
vsPaper(double ours, double paper, int precision)
{
    return fmtDouble(ours, precision) + " (paper " +
           fmtDouble(paper, precision) + ")";
}

std::string
configName(int c)
{
    return arch::allConfigs()[static_cast<size_t>(c)].name;
}

std::string
csvDir()
{
    std::string dir = "bench_csv";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

} // namespace etpu::bench
