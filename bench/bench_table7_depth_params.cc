/**
 * @file
 * Table 7: average number of trainable parameters per graph depth —
 * the explanation for the latency dip at depths 4-5 in Figure 11.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hh"

namespace
{

using namespace etpu;

const std::map<int, double> paperValues = {
    {3, 7442469.77}, {4, 6144266.36}, {5, 6399201.72}, {6, 8428092.52}};

void
report()
{
    const auto &ds = bench::dataset();
    std::map<int, std::pair<double, uint64_t>> by_depth;
    for (const auto &r : ds.records) {
        auto &[sum, n] = by_depth[r.depth];
        sum += static_cast<double>(r.params);
        n++;
    }

    AsciiTable t("Table 7 — average parameters vs graph depth");
    t.header({"Graph Depth", "Avg. # of Parameters (ours)",
              "Avg. # of Parameters (paper)", "# of Models"});
    for (const auto &[depth, agg] : by_depth) {
        auto it = paperValues.find(depth);
        t.row({std::to_string(depth),
               fmtDouble(agg.first / static_cast<double>(agg.second), 2),
               it == paperValues.end() ? "n/a"
                                       : fmtDouble(it->second, 2),
               fmtCount(agg.second)});
    }
    t.print(std::cout);
    std::cout << "(the paper lists depths 3-6; the dip at depths 4-5 "
                 "drives the Figure 11 latency dip)\n";
}

void
BM_DepthAggregation(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        double sums[8] = {};
        for (const auto &r : ds.records)
            sums[std::min<int>(r.depth, 7)] +=
                static_cast<double>(r.params);
        benchmark::DoNotOptimize(sums[3]);
    }
}
BENCHMARK(BM_DepthAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 7 — parameters vs depth",
        "depth-4/5 graphs average fewer parameters than depth-3 and "
        "depth-6 graphs");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
