/**
 * @file
 * Table 7: average number of trainable parameters per graph depth —
 * the explanation for the latency dip at depths 4-5 in Figure 11.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hh"

namespace
{

using namespace etpu;

const std::map<int, double> paperValues = {
    {3, 7442469.77}, {4, 6144266.36}, {5, 6399201.72}, {6, 8428092.52}};

void
report()
{
    const auto &idx = bench::index();
    query::GroupAggregate by_depth =
        idx.groupBy({query::MetricKind::Depth, 0},
                    {{query::MetricKind::Params, 0}});

    AsciiTable t("Table 7 — average parameters vs graph depth");
    t.header({"Graph Depth", "Avg. # of Parameters (ours)",
              "Avg. # of Parameters (paper)", "# of Models"});
    for (size_t g = 0; g < by_depth.groups(); g++) {
        int depth = static_cast<int>(by_depth.keys[g]);
        auto it = paperValues.find(depth);
        t.row({std::to_string(depth),
               fmtDouble(by_depth.mean(0, g), 2),
               it == paperValues.end() ? "n/a"
                                       : fmtDouble(it->second, 2),
               fmtCount(by_depth.counts[g])});
    }
    t.print(std::cout);
    std::cout << "(the paper lists depths 3-6; the dip at depths 4-5 "
                 "drives the Figure 11 latency dip)\n";
}

void
BM_DepthAggregation(benchmark::State &state)
{
    const auto &idx = bench::index();
    for (auto _ : state) {
        query::GroupAggregate by_depth =
            idx.groupBy({query::MetricKind::Depth, 0},
                        {{query::MetricKind::Params, 0}});
        benchmark::DoNotOptimize(by_depth.sums[0].data());
    }
}
BENCHMARK(BM_DepthAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 7 — parameters vs depth",
        "depth-4/5 graphs average fewer parameters than depth-3 and "
        "depth-6 graphs");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
