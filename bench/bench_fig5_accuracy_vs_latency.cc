/**
 * @file
 * Figure 5: accuracy-vs-latency scatter per configuration. The paper's
 * observation is that models cluster into latency buckets keyed by the
 * number of 3x3 convolutions per cell: the first three buckets
 * (<2 ms, 2-3 ms, 3-4 ms) average 1.48, 2.0 and 3.0 conv3x3 ops.
 * Scatter samples are dumped to bench_csv/fig5_<config>.csv.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/csv.hh"

namespace
{

using namespace etpu;

const double paperConv3x3PerBucket[3] = {1.48, 2.0, 3.0};

void
report()
{
    const auto &recs = bench::filteredRecords();
    for (int c = 0; c < 3; c++) {
        // Latency buckets: <2, 2-3, 3-4, >=4 ms.
        double conv3_sum[4] = {};
        uint64_t count[4] = {};
        for (const auto *r : recs) {
            double lat = r->latencyMs[static_cast<size_t>(c)];
            int b = lat < 2.0 ? 0 : lat < 3.0 ? 1 : lat < 4.0 ? 2 : 3;
            conv3_sum[b] += r->numConv3x3;
            count[b]++;
        }
        AsciiTable t("Figure 5" + std::string(1, 'a' + c) + " — " +
                     bench::configName(c) +
                     " latency buckets vs #conv3x3");
        t.header({"Latency bucket", "# models", "Avg #conv3x3 (ours)",
                  "Avg #conv3x3 (paper)"});
        const char *names[4] = {"< 2.0 ms", "2.0 - 3.0 ms",
                                "3.0 - 4.0 ms", ">= 4.0 ms"};
        for (int b = 0; b < 4; b++) {
            double avg =
                count[b] ? conv3_sum[b] / static_cast<double>(count[b])
                         : 0.0;
            t.row({names[b], fmtCount(count[b]), fmtDouble(avg, 2),
                   b < 3 ? fmtDouble(paperConv3x3PerBucket[b], 2)
                         : "n/a"});
        }
        t.print(std::cout);
    }

    // Scatter sample for external plotting.
    for (int c = 0; c < 3; c++) {
        CsvWriter csv(bench::csvDir() + "/fig5_" +
                      bench::configName(c) + ".csv");
        csv.row({"latency_ms", "mean_validation_accuracy"});
        size_t stride = std::max<size_t>(1, recs.size() / 20000);
        for (size_t i = 0; i < recs.size(); i += stride) {
            csv.rowDoubles({recs[i]->latencyMs[static_cast<size_t>(c)],
                            recs[i]->accuracy});
        }
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig5_V*.csv\n";
}

void
BM_LatencyBucketing(benchmark::State &state)
{
    const auto &recs = bench::filteredRecords();
    for (auto _ : state) {
        uint64_t counts[4] = {};
        for (const auto *r : recs) {
            double lat = r->latencyMs[0];
            counts[lat < 2 ? 0 : lat < 3 ? 1 : lat < 4 ? 2 : 3]++;
        }
        benchmark::DoNotOptimize(counts[0]);
    }
}
BENCHMARK(BM_LatencyBucketing)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 5 — accuracy vs latency",
        "data clusters into latency buckets; adding one conv3x3 per "
        "cell jumps a model to the next bucket");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
