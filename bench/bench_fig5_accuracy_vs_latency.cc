/**
 * @file
 * Figure 5: accuracy-vs-latency scatter per configuration. The paper's
 * observation is that models cluster into latency buckets keyed by the
 * number of 3x3 convolutions per cell: the first three buckets
 * (<2 ms, 2-3 ms, 3-4 ms) average 1.48, 2.0 and 3.0 conv3x3 ops.
 * Scatter samples are dumped to bench_csv/fig5_<config>.csv.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <limits>

#include "bench_common.hh"
#include "common/csv.hh"

namespace
{

using namespace etpu;

const double paperConv3x3PerBucket[3] = {1.48, 2.0, 3.0};

void
report()
{
    const auto &idx = bench::index();
    const auto &rows = bench::filteredRows();
    constexpr double inf = std::numeric_limits<double>::infinity();
    // Latency buckets: <2, 2-3, 3-4, >=4 ms.
    const std::vector<double> edges = {-inf, 2.0, 3.0, 4.0, inf};
    for (int c = 0; c < 3; c++) {
        query::GroupAggregate buckets =
            idx.bucketBy(query::latency(c), edges,
                         {{query::MetricKind::Conv3x3, 0}},
                         &bench::accuracyFilterQuery());
        AsciiTable t("Figure 5" + std::string(1, 'a' + c) + " — " +
                     bench::configName(c) +
                     " latency buckets vs #conv3x3");
        t.header({"Latency bucket", "# models", "Avg #conv3x3 (ours)",
                  "Avg #conv3x3 (paper)"});
        const char *names[4] = {"< 2.0 ms", "2.0 - 3.0 ms",
                                "3.0 - 4.0 ms", ">= 4.0 ms"};
        for (size_t b = 0; b < buckets.groups(); b++) {
            t.row({names[b], fmtCount(buckets.counts[b]),
                   fmtDouble(buckets.mean(0, b), 2),
                   b < 3 ? fmtDouble(paperConv3x3PerBucket[b], 2)
                         : "n/a"});
        }
        t.print(std::cout);
    }

    // Scatter sample for external plotting.
    const auto &acc = idx.column({query::MetricKind::Accuracy, 0});
    for (int c = 0; c < 3; c++) {
        const auto &lat = idx.column(query::latency(c));
        CsvWriter csv(bench::csvDir() + "/fig5_" +
                      bench::configName(c) + ".csv");
        csv.row({"latency_ms", "mean_validation_accuracy"});
        size_t stride = std::max<size_t>(1, rows.size() / 20000);
        for (size_t i = 0; i < rows.size(); i += stride)
            csv.rowDoubles({lat[rows[i]], acc[rows[i]]});
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig5_V*.csv\n";
}

void
BM_LatencyBucketing(benchmark::State &state)
{
    const auto &idx = bench::index();
    constexpr double inf = std::numeric_limits<double>::infinity();
    const std::vector<double> edges = {-inf, 2.0, 3.0, 4.0, inf};
    for (auto _ : state) {
        query::GroupAggregate buckets =
            idx.bucketBy(query::latency(0), edges, {},
                         &bench::accuracyFilterQuery());
        benchmark::DoNotOptimize(buckets.counts[0]);
    }
}
BENCHMARK(BM_LatencyBucketing)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 5 — accuracy vs latency",
        "data clusters into latency buckets; adding one conv3x3 per "
        "cell jumps a model to the next bucket");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
