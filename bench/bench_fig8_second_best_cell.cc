/**
 * @file
 * Figure 8: the second-best cell (94.895%, two conv1x1 + two conv3x3,
 * 25,042,826 parameters): trading 0.16% accuracy buys up to 1.78x
 * lower latency, and the winner flips from V2 to V1.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

const double paperLatency[3] = {2.597874, 2.679829, 2.799071};
const double paperSpeedup[3] = {1.78, 1.56, 1.62};
const double paperBestLatency[3] = {4.633768, 4.185697, 4.535305};

double
latencyOf(size_t anchor_index, int c)
{
    if (const auto *rec = bench::anchorRecord(anchor_index))
        return rec->latencyMs[static_cast<size_t>(c)];
    sim::Simulator sim(arch::allConfigs()[static_cast<size_t>(c)]);
    return sim.runCell(nas::anchorCells()[anchor_index].cell).latencyMs;
}

void
report()
{
    const nas::AnchorCell &anchor = nas::anchorCells()[1];
    uint64_t params = nas::countTrainableParams(anchor.cell);
    uint64_t best_params =
        nas::countTrainableParams(nas::anchorCells()[0].cell);
    std::cout << "cell: " << anchor.cell.str() << "\n"
              << "params: " << fmtCount(params)
              << " (paper 25,042,826), "
              << fmtDouble(100.0 * (1.0 -
                                    static_cast<double>(params) /
                                        static_cast<double>(best_params)),
                           1)
              << "% fewer than the best cell\n"
              << "accuracy: " << fmtDouble(anchor.accuracy * 100, 3)
              << "% (paper 94.895%)\n\n";

    AsciiTable t("Figure 8b — latency and speedup over the best cell");
    t.header({"Accelerator", "Latency ms (ours/paper)",
              "Speedup vs best cell (ours/paper)"});
    double ours[3];
    for (int c = 0; c < 3; c++) {
        ours[c] = latencyOf(1, c);
        double speedup = latencyOf(0, c) / ours[c];
        (void)paperBestLatency;
        t.row({bench::configName(c),
               bench::vsPaper(ours[c], paperLatency[c], 4),
               bench::vsPaper(speedup, paperSpeedup[c], 2)});
    }
    t.print(std::cout);
    int best = 0;
    for (int c = 1; c < 3; c++) {
        if (ours[c] < ours[best])
            best = c;
    }
    std::cout << "winner: " << bench::configName(best)
              << " (paper: V1)\n";
}

void
BM_SimulateFig8Cell(benchmark::State &state)
{
    const auto &cell = nas::anchorCells()[1].cell;
    nas::Network net = nas::buildNetwork(cell);
    sim::Simulator sim(arch::configV1());
    for (auto _ : state) {
        auto r = sim.run(net, &cell);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_SimulateFig8Cell)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 8 — second-best cell",
        "0.16% accuracy trade buys up to 1.78x latency on V1; V1 "
        "becomes the winner thanks to its conv1x1 efficiency");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
