/**
 * @file
 * Campaign-throughput benchmark for the characterization hot path: how
 * many cells/second the pipeline sustains end-to-end (enumerate once,
 * then build -> lower -> annotate -> simulate on every accelerator
 * configuration), plus a per-stage breakdown measured through one
 * sim::EvalContext. The result is written as JSON so the repo can
 * track a perf trajectory across PRs: the committed BENCH_campaign.json
 * at the repo root holds the reference numbers, and future hot-path
 * changes are expected to re-run this bench and compare.
 *
 * Usage: bench_campaign_throughput [--cells N] [--threads N]
 *                                  [--repeats N] [--out PATH]
 *                                  [--model CKPT] [--threads-sweep]
 *
 * --threads-sweep additionally measures the end-to-end campaign at 1,
 * 2, 4 and 8 workers and emits the scaling curve into the JSON — the
 * multi-thread trajectory of the work-stealing task runtime.
 *
 * Defaults honor $ETPU_SAMPLE (cell count) and $ETPU_THREADS. The
 * end-to-end measurement is the best of --repeats runs (default 3) to
 * shave scheduler noise; per-stage numbers come from a single
 * single-threaded pass so they sum to roughly the per-cell cost.
 *
 * With --model, the learned characterization backend (an etpu_train
 * checkpoint driven through per-worker PredictContexts) is measured
 * over the same cells and reported next to the simulator — the
 * per-cell cost comparison behind "sweep via learned proxy".
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/json_out.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "common/table.hh"
#include "gnn/predict_context.hh"
#include "nasbench/enumerator.hh"
#include "pipeline/builder.hh"
#include "tpusim/eval_context.hh"

namespace
{

using namespace etpu;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One stage's accumulated wall time over the measured pass. */
struct StageTiming
{
    const char *name;
    double seconds = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    size_t cells_wanted = pipeline::sampleSizeFromEnv();
    unsigned threads = 0;
    int repeats = 3;
    bool threads_sweep = false;
    std::string out_path = "BENCH_campaign.json";
    std::string model_path;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                etpu_fatal("missing value for ", arg);
            return argv[++i];
        };
        auto next_count = [&]() {
            const char *text = next();
            auto n = parseInt(text);
            if (!n || *n < 0)
                etpu_fatal(arg, " expects a count >= 0, got ", text);
            return static_cast<uint64_t>(*n);
        };
        if (arg == "--cells") {
            cells_wanted = static_cast<size_t>(next_count());
        } else if (arg == "--threads") {
            constexpr uint64_t cap = std::numeric_limits<unsigned>::max();
            threads =
                static_cast<unsigned>(std::min(next_count(), cap));
        } else if (arg == "--repeats") {
            repeats = static_cast<int>(
                std::max<uint64_t>(1, next_count()));
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--model") {
            model_path = next();
        } else if (arg == "--threads-sweep") {
            threads_sweep = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: bench_campaign_throughput [--cells N] "
                         "[--threads N] [--repeats N] [--out PATH]\n"
                         "                                 "
                         "[--model CKPT] [--threads-sweep]\n"
                         "--cells 0 (default) runs the full cell space; "
                         "defaults honor $ETPU_SAMPLE and\n"
                         "$ETPU_THREADS. Writes the measured result as "
                         "JSON to --out (default\n"
                         "BENCH_campaign.json in the working "
                         "directory). With --model, the learned\n"
                         "backend (etpu_train checkpoint) is measured "
                         "over the same cells.\n"
                         "--threads-sweep also measures the campaign "
                         "at 1/2/4/8 workers and records\n"
                         "the scaling curve in the JSON.\n";
            return 0;
        } else {
            etpu_fatal("unknown argument ", arg);
        }
    }

    std::cout << "\n=== campaign throughput ===\n"
              << "the characterization hot path: buildNetworkInto -> "
                 "Compiler::lower -> per-config\n"
              << "Compiler::annotate + Simulator::run, via per-worker "
                 "sim::EvalContext\n\n";

    auto cells = nas::enumerateCells({}, nullptr, threads);
    size_t enumerated = cells.size();
    pipeline::sampleCells(cells, cells_wanted);
    std::cout << "cells: " << fmtCount(cells.size()) << " (of "
              << fmtCount(enumerated) << " enumerated)\n";

    // Per-stage breakdown: one single-threaded EvalContext-equivalent
    // pass with a timer around each stage. The clock reads add a few
    // ns per cell against stage costs in the tens of us.
    StageTiming stage_build{"build_network"};
    StageTiming stage_lower{"lower"};
    StageTiming stage_sim{"annotate_simulate"};
    {
        sim::EvalContext warmup; // touch the context path once
        warmup.evaluate(cells.front());

        std::vector<sim::Compiler> compilers;
        std::vector<sim::Simulator> simulators;
        for (const auto &cfg : arch::allConfigs()) {
            compilers.emplace_back(cfg);
            simulators.emplace_back(cfg);
        }
        nas::Network net;
        sim::Program prog;
        sim::SimScratch scratch;
        sim::PerfResult sink;
        for (const auto &cell : cells) {
            auto t0 = Clock::now();
            nas::buildNetworkInto(cell, net);
            auto t1 = Clock::now();
            sim::Compiler::lower(net, &cell, prog);
            auto t2 = Clock::now();
            for (size_t c = 0; c < simulators.size(); c++) {
                compilers[c].annotate(net, prog);
                sink = simulators[c].run(prog, scratch);
            }
            auto t3 = Clock::now();
            stage_build.seconds +=
                std::chrono::duration<double>(t1 - t0).count();
            stage_lower.seconds +=
                std::chrono::duration<double>(t2 - t1).count();
            stage_sim.seconds +=
                std::chrono::duration<double>(t3 - t2).count();
        }
        static_cast<void>(sink);
    }

    // End-to-end: the real pipeline entry point the sharded campaign
    // builder drives, records and accuracy surrogate included.
    double best_e2e = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; r++) {
        auto t0 = Clock::now();
        nas::Dataset ds = pipeline::buildDataset(cells, threads);
        best_e2e = std::min(best_e2e, secondsSince(t0));
        if (ds.size() != cells.size())
            etpu_fatal("campaign produced ", ds.size(), " records for ",
                       cells.size(), " cells");
    }
    double cells_per_sec = static_cast<double>(cells.size()) / best_e2e;

    double n = static_cast<double>(cells.size());
    std::cout << "\nper-stage (single-threaded, us/cell over "
              << fmtCount(cells.size()) << " cells):\n";
    for (const StageTiming &s :
         {stage_build, stage_lower, stage_sim}) {
        std::cout << "  " << s.name << ": "
                  << fmtDouble(s.seconds / n * 1e6, 2) << " us/cell ("
                  << fmtDouble(s.seconds, 3) << " s total)\n";
    }
    std::cout << "\nend-to-end (threads="
              << resolveWorkerCount(threads) << ", best of " << repeats
              << "): " << fmtDouble(best_e2e, 3) << " s = "
              << fmtDouble(cells_per_sec, 1) << " cells/sec\n";

    // Scaling curve: the same campaign pinned at 1/2/4/8 workers on
    // the work-stealing runtime. Speedups are bounded by the machine's
    // core count (a 1-core runner shows a flat curve by design).
    struct SweepPoint
    {
        unsigned threads;
        double seconds;
    };
    std::vector<SweepPoint> sweep;
    if (threads_sweep) {
        std::cout << "\nthreads sweep (best of " << repeats << "):\n";
        for (unsigned tc : {1u, 2u, 4u, 8u}) {
            double best = std::numeric_limits<double>::infinity();
            for (int r = 0; r < repeats; r++) {
                auto t0 = Clock::now();
                nas::Dataset ds = pipeline::buildDataset(cells, tc);
                best = std::min(best, secondsSince(t0));
                if (ds.size() != cells.size())
                    etpu_fatal("sweep campaign produced ", ds.size(),
                               " records for ", cells.size(), " cells");
            }
            sweep.push_back({tc, best});
            std::cout << "  " << tc << " worker" << (tc > 1 ? "s" : " ")
                      << ": " << fmtDouble(best, 3) << " s = "
                      << fmtDouble(n / best, 1) << " cells/sec ("
                      << fmtDouble(sweep.front().seconds / best, 2)
                      << "x vs 1 worker)\n";
        }
    }

    // Learned-backend comparison over the same cells: the metric
    // stage (featurize + per-config GNN prediction through one warmed
    // PredictContext, single-threaded) and the full learned
    // characterization pipeline.
    double learned_e2e = 0.0, learned_predict = 0.0;
    if (!model_path.empty()) {
        gnn::CheckpointBundle bundle;
        if (!gnn::loadCheckpoint(model_path, bundle))
            etpu_fatal("cannot load checkpoint ", model_path);
        std::vector<const gnn::Predictor *> models;
        for (const gnn::Predictor &p : bundle.models)
            models.push_back(&p);
        if (models.empty())
            etpu_fatal("checkpoint ", model_path, " holds no models");

        std::vector<gnn::PredictContext> contexts(1);
        std::vector<double> preds(
            std::min(cells.size(), gnn::predictBatchBlock));
        auto predict_pass = [&]() {
            gnn::forEachFeaturizedBlock(
                cells.data(), cells.size(), contexts, 1,
                [&](gnn::PredictContext &ctx, size_t, size_t,
                    unsigned) {
                for (const gnn::Predictor *p : models)
                    ctx.predictBatched(*p, preds.data());
            });
        };
        predict_pass(); // warm the context
        auto t0 = Clock::now();
        predict_pass();
        learned_predict = secondsSince(t0);

        pipeline::BackendSpec learned;
        learned.kind = pipeline::Backend::Learned;
        learned.modelPath = model_path;
        learned_e2e = std::numeric_limits<double>::infinity();
        for (int r = 0; r < repeats; r++) {
            auto t1 = Clock::now();
            nas::Dataset ds =
                pipeline::buildDataset(cells, threads, learned);
            learned_e2e = std::min(learned_e2e, secondsSince(t1));
            if (ds.size() != cells.size())
                etpu_fatal("learned campaign produced ", ds.size(),
                           " records for ", cells.size(), " cells");
        }
        std::cout << "\nlearned backend (" << models.size()
                  << " models from " << model_path << "):\n"
                  << "  featurize_predict: "
                  << fmtDouble(learned_predict / n * 1e6, 2)
                  << " us/cell (vs "
                  << fmtDouble(
                         (stage_lower.seconds + stage_sim.seconds) / n *
                             1e6,
                         2)
                  << " us/cell simulator metric stage)\n"
                  << "  end-to-end: " << fmtDouble(learned_e2e, 3)
                  << " s = " << fmtDouble(n / learned_e2e, 1)
                  << " cells/sec ("
                  << fmtDouble(best_e2e / learned_e2e, 2)
                  << "x the simulator backend)\n";
    }

    std::ofstream json(out_path, std::ios::trunc);
    if (!json) {
        etpu_fatal("cannot write bench result to ", out_path);
    }
    json << "{\n"
         << "  \"bench_schema\": 1,\n"
         << "  \"bench\": \"campaign_throughput\",\n"
         << "  \"cells\": " << cells.size() << ",\n"
         << "  \"configs\": " << arch::allConfigs().size() << ",\n"
         << "  \"threads\": " << resolveWorkerCount(threads) << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"end_to_end\": {\n"
         << "    \"seconds\": " << fmtDouble(best_e2e, 6) << ",\n"
         << "    \"cells_per_sec\": " << fmtDouble(cells_per_sec, 1)
         << "\n  },\n";
    if (!sweep.empty()) {
        json << "  \"threads_sweep\": [\n";
        for (size_t s = 0; s < sweep.size(); s++) {
            json << "    {\"threads\": " << sweep[s].threads
                 << ", \"seconds\": " << fmtDouble(sweep[s].seconds, 6)
                 << ", \"cells_per_sec\": "
                 << fmtDouble(n / sweep[s].seconds, 1)
                 << ", \"speedup_vs_1\": "
                 << fmtDouble(sweep.front().seconds / sweep[s].seconds,
                              3)
                 << "}" << (s + 1 < sweep.size() ? "," : "") << "\n";
        }
        json << "  ],\n";
    }
    json
         << "  \"stages_us_per_cell\": {\n"
         << "    \"build_network\": "
         << fmtDouble(stage_build.seconds / n * 1e6, 3) << ",\n"
         << "    \"lower\": "
         << fmtDouble(stage_lower.seconds / n * 1e6, 3) << ",\n"
         << "    \"annotate_simulate\": "
         << fmtDouble(stage_sim.seconds / n * 1e6, 3) << "\n  }";
    if (!model_path.empty()) {
        json << ",\n  \"learned_backend\": {\n"
             << "    \"model\": " << jsonQuote(model_path) << ",\n"
             << "    \"featurize_predict_us_per_cell\": "
             << fmtDouble(learned_predict / n * 1e6, 3) << ",\n"
             << "    \"end_to_end\": {\n"
             << "      \"seconds\": " << fmtDouble(learned_e2e, 6)
             << ",\n"
             << "      \"cells_per_sec\": "
             << fmtDouble(n / learned_e2e, 1) << "\n    },\n"
             << "    \"speedup_vs_simulator\": "
             << fmtDouble(best_e2e / learned_e2e, 3) << "\n  }";
    }
    json << "\n}\n";
    json.flush();
    if (!json)
        etpu_fatal("failed writing bench result to ", out_path);
    std::cout << "result written to " << out_path << "\n";
    return 0;
}
