/**
 * @file
 * Figure 13: among cells with five 3x3 convolutions, the latency
 * extremes on V2: a depth-3 parallel cell at 0.36 ms (accuracy 0.919)
 * vs a depth-6 chain at 4.936 ms (accuracy 0.938). Depth, not op
 * count, separates them: parallel branches split the output channels.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &ds = bench::dataset();
    const nas::ModelRecord *lo = nullptr, *hi = nullptr;
    for (const auto &r : ds.records) {
        if (r.numConv3x3 != 5 || r.numConv1x1 || r.numMaxPool)
            continue;
        if (!lo || r.latencyMs[1] < lo->latencyMs[1])
            lo = &r;
        if (!hi || r.latencyMs[1] > hi->latencyMs[1])
            hi = &r;
    }
    if (!lo || !hi) {
        std::cout << "no five-conv3x3 cells in this dataset sample; "
                     "run without ETPU_SAMPLE for the full space\n";
        return;
    }

    AsciiTable t("Figure 13 — five-conv3x3 latency extremes on V2");
    t.header({"Extreme", "Depth", "V2 latency ms (ours/paper)",
              "Accuracy (ours/paper)", "Cell"});
    t.row({"lowest", std::to_string(lo->depth),
           bench::vsPaper(lo->latencyMs[1], 0.36, 3),
           bench::vsPaper(lo->accuracy, 0.919, 3),
           lo->spec.dag.str()});
    t.row({"highest", std::to_string(hi->depth),
           bench::vsPaper(hi->latencyMs[1], 4.936, 3),
           bench::vsPaper(hi->accuracy, 0.938, 3),
           hi->spec.dag.str()});
    t.print(std::cout);
    std::cout << "latency ratio: "
              << fmtDouble(hi->latencyMs[1] / lo->latencyMs[1], 1)
              << "x (paper " << fmtDouble(4.936 / 0.36, 1) << "x)\n";
}

void
BM_ScanFiveConvCells(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        double lo = 1e30, hi = -1;
        for (const auto &r : ds.records) {
            if (r.numConv3x3 != 5 || r.numConv1x1 || r.numMaxPool)
                continue;
            lo = std::min(lo, static_cast<double>(r.latencyMs[1]));
            hi = std::max(hi, static_cast<double>(r.latencyMs[1]));
        }
        benchmark::DoNotOptimize(hi - lo);
    }
}
BENCHMARK(BM_ScanFiveConvCells)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 13 — conv3x3-count latency extremes",
        "with five conv3x3 each, a depth-3 cell runs 0.36 ms while a "
        "depth-6 chain runs 4.936 ms on V2");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
