/**
 * @file
 * Figure 14: trainable parameters vs latency per configuration. The
 * paper's reading: tiny models are cached by all three and tie;
 * mid-size models (5-30M) run fastest on V1 (largest on-chip SRAM);
 * past the caching crossover the bandwidth-rich V2/V3 take over, with
 * V2 ahead of V3 thanks to sustained interconnect bandwidth.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/csv.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &idx = bench::index();
    const double edges_m[8] = {0, 2, 5, 10, 20, 30, 40, 51};
    std::vector<double> edges;
    for (double e : edges_m)
        edges.push_back(e * 1e6);
    query::GroupAggregate bands =
        idx.bucketBy({query::MetricKind::Params, 0}, edges,
                     {query::latency(0), query::latency(1),
                      query::latency(2)});

    AsciiTable t("Figure 14 — latency by parameter-size band");
    t.header({"Params (millions)", "# models", "V1 mean ms",
              "V2 mean ms", "V3 mean ms", "winner"});
    for (size_t b = 0; b < bands.groups(); b++) {
        if (!bands.counts[b])
            continue;
        double means[3];
        for (size_t c = 0; c < 3; c++)
            means[c] = bands.mean(c, b);
        int w = 0;
        for (int c = 1; c < 3; c++) {
            if (means[c] < means[w])
                w = c;
        }
        t.row({fmtDouble(edges_m[b], 0) + "-" +
                   fmtDouble(edges_m[b + 1], 0),
               fmtCount(bands.counts[b]), fmtDouble(means[0], 3),
               fmtDouble(means[1], 3), fmtDouble(means[2], 3),
               bench::configName(w)});
    }
    t.print(std::cout);
    std::cout << "paper: V1 best for ~5-30M; V2/V3 best beyond the "
                 "caching crossover; V2 ahead of V3\n";

    const auto &params = idx.column({query::MetricKind::Params, 0});
    CsvWriter csv(bench::csvDir() + "/fig14_params_latency.csv");
    csv.row({"params", "v1_ms", "v2_ms", "v3_ms"});
    size_t stride = std::max<size_t>(1, idx.size() / 20000);
    for (size_t i = 0; i < idx.size(); i += stride) {
        auto row = static_cast<uint32_t>(i);
        csv.rowDoubles({params[row],
                        idx.value(query::latency(0), row),
                        idx.value(query::latency(1), row),
                        idx.value(query::latency(2), row)});
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig14_params_latency.csv\n";
}

void
BM_ParamBandAggregation(benchmark::State &state)
{
    const auto &idx = bench::index();
    const std::vector<double> edges = {0,    1e7,  2e7,  3e7,
                                       4e7,  5e7,  6e7,  7e7, 8e7};
    for (auto _ : state) {
        query::GroupAggregate bands =
            idx.bucketBy({query::MetricKind::Params, 0}, edges,
                         {query::latency(2)});
        benchmark::DoNotOptimize(bands.sums[0].data());
    }
}
BENCHMARK(BM_ParamBandAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 14 — parameters vs latency",
        "latency tracks parameter count; the winner changes with model "
        "size through the parameter-caching crossover");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
