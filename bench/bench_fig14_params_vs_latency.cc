/**
 * @file
 * Figure 14: trainable parameters vs latency per configuration. The
 * paper's reading: tiny models are cached by all three and tie;
 * mid-size models (5-30M) run fastest on V1 (largest on-chip SRAM);
 * past the caching crossover the bandwidth-rich V2/V3 take over, with
 * V2 ahead of V3 thanks to sustained interconnect bandwidth.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "common/csv.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &ds = bench::dataset();
    const double edges_m[8] = {0, 2, 5, 10, 20, 30, 40, 51};

    AsciiTable t("Figure 14 — latency by parameter-size band");
    t.header({"Params (millions)", "# models", "V1 mean ms",
              "V2 mean ms", "V3 mean ms", "winner"});
    for (int b = 0; b + 1 < 8; b++) {
        std::array<std::vector<double>, 3> lat;
        for (const auto &r : ds.records) {
            double m = static_cast<double>(r.params) / 1e6;
            if (m < edges_m[b] || m >= edges_m[b + 1])
                continue;
            for (int c = 0; c < 3; c++) {
                lat[static_cast<size_t>(c)].push_back(
                    r.latencyMs[static_cast<size_t>(c)]);
            }
        }
        if (lat[0].empty())
            continue;
        double means[3];
        for (int c = 0; c < 3; c++)
            means[c] = stats::summarize(lat[static_cast<size_t>(c)]).mean;
        int w = 0;
        for (int c = 1; c < 3; c++) {
            if (means[c] < means[w])
                w = c;
        }
        t.row({fmtDouble(edges_m[b], 0) + "-" +
                   fmtDouble(edges_m[b + 1], 0),
               fmtCount(lat[0].size()), fmtDouble(means[0], 3),
               fmtDouble(means[1], 3), fmtDouble(means[2], 3),
               bench::configName(w)});
    }
    t.print(std::cout);
    std::cout << "paper: V1 best for ~5-30M; V2/V3 best beyond the "
                 "caching crossover; V2 ahead of V3\n";

    CsvWriter csv(bench::csvDir() + "/fig14_params_latency.csv");
    csv.row({"params", "v1_ms", "v2_ms", "v3_ms"});
    size_t stride = std::max<size_t>(1, ds.size() / 20000);
    for (size_t i = 0; i < ds.size(); i += stride) {
        const auto &r = ds.records[i];
        csv.rowDoubles({static_cast<double>(r.params), r.latencyMs[0],
                        r.latencyMs[1], r.latencyMs[2]});
    }
    std::cout << "scatter series written to " << bench::csvDir()
              << "/fig14_params_latency.csv\n";
}

void
BM_ParamBandAggregation(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        double sums[8] = {};
        for (const auto &r : ds.records) {
            sums[std::min<uint64_t>(r.params / 10000000, 7)] +=
                r.latencyMs[2];
        }
        benchmark::DoNotOptimize(sums[1]);
    }
}
BENCHMARK(BM_ParamBandAggregation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 14 — parameters vs latency",
        "latency tracks parameter count; the winner changes with model "
        "size through the parameter-caching crossover");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
