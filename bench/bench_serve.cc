/**
 * @file
 * Throughput/latency benchmark for the etpu_serve daemon: an
 * in-process Server over a warmed DatasetIndex, driven by concurrent
 * TCP clients issuing the mixed request stream a dashboard would
 * (count / rows / top-k / pareto / bucket / characterize). Reports
 * sustained QPS plus client-observed p50/p99 per-request latency, and
 * writes the result as JSON so the repo can track a serve-path perf
 * trajectory across PRs: BENCH_serve.json at the repo root holds the
 * reference numbers.
 *
 * Usage: bench_serve [--dataset PATH] [--clients N] [--seconds S]
 *                    [--workers N] [--out PATH]
 *
 * Clients run request/response lockstep (one in flight per
 * connection), so QPS measures the daemon's service rate under
 * --clients-way concurrency, not pipelining depth. Each client is a
 * client::ServeClient, so an "overloaded" rejection becomes a
 * backoff-and-retry instead of a failed run — the JSON result
 * reports the retry/rejection counts alongside QPS, making overload
 * visible rather than fatal. Only calls that exhaust every retry
 * count as errors (and any error still fails the run).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "client/serve_client.hh"
#include "common/env.hh"
#include "common/json_out.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "common/signal.hh"
#include "common/socket.hh"
#include "common/table.hh"
#include "pipeline/builder.hh"
#include "serve/server.hh"

namespace
{

using namespace etpu;
using Clock = std::chrono::steady_clock;

/** The mixed request stream, weighted toward the cheap query ops. */
const char *const kRequests[] = {
    R"({"op":"count","filter":"accuracy>=0.7"})",
    R"({"op":"rows","limit":8,"filter":"depth<=6"})",
    R"({"op":"topk","k":5,"by":"latency@V2","order":"asc"})",
    R"({"op":"count"})",
    R"({"op":"pareto","objectives":"accuracy:max,latency@V1:min"})",
    R"({"op":"topk","k":3,"by":"accuracy"})",
    R"({"op":"bucket","key":"depth","agg":"accuracy,latency@V1"})",
    R"({"op":"characterize","cells":["[input,conv3x3,output] 0->1 1->2","[input,conv1x1,maxpool3x3,output] 0->1 1->2 2->3"]})",
};
constexpr size_t kNumRequests =
    sizeof(kRequests) / sizeof(kRequests[0]);

struct ClientResult
{
    std::vector<double> latenciesUs;
    uint64_t errors = 0;
    client::ClientCounters counters;
};

void
clientLoop(uint16_t port, unsigned id, Clock::time_point deadline,
           ClientResult &result)
{
    client::ClientOptions copts;
    copts.port = port;
    copts.seed = 0x9e3779b97f4a7c15ull + id;
    client::ServeClient cli(copts);
    size_t next = id; // desynchronize the streams across clients
    while (Clock::now() < deadline) {
        const char *req = kRequests[next++ % kNumRequests];
        auto t0 = Clock::now();
        client::CallResult r = cli.call(req);
        auto t1 = Clock::now();
        // A retried call's latency includes its backoff: the client-
        // observed truth under overload.
        if (!r.answered || !r.ok) {
            result.errors++;
            continue;
        }
        result.latenciesUs.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
    }
    result.counters = cli.counters();
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dataset_path;
    std::string out_path = "BENCH_serve.json";
    unsigned clients = 8;
    unsigned workers = 0;
    double seconds = 5.0;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                etpu_fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--dataset") {
            dataset_path = next();
        } else if (arg == "--clients") {
            auto n = parseInt(next());
            if (!n || *n < 1 || *n > 256)
                etpu_fatal("--clients expects an integer in [1, 256]");
            clients = static_cast<unsigned>(*n);
        } else if (arg == "--workers") {
            auto n = parseInt(next());
            if (!n || *n < 0)
                etpu_fatal("--workers expects a count >= 0");
            workers = static_cast<unsigned>(*n);
        } else if (arg == "--seconds") {
            auto n = parseInt(next());
            if (!n || *n < 1 || *n > 600)
                etpu_fatal("--seconds expects an integer in [1, 600]");
            seconds = static_cast<double>(*n);
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: bench_serve [--dataset PATH] [--clients N]\n"
                   "                   [--seconds S] [--workers N] "
                   "[--out PATH]\n"
                   "Measures etpu_serve QPS and p50/p99 latency under "
                   "N concurrent clients\n"
                   "issuing a mixed query/characterize stream, and "
                   "writes the JSON result\n"
                   "to --out (default BENCH_serve.json).\n";
            return 0;
        } else {
            etpu_fatal("unknown argument ", arg);
        }
    }
    if (dataset_path.empty())
        dataset_path = pipeline::resolvedCachePath();

    serve::ServerOptions opts;
    opts.workers = workers;
    opts.queueCapacity = 1024; // lockstep clients cannot fill this
    opts.engine.datasetPath = dataset_path;
    serve::Server server(std::move(opts));
    resetShutdownSignals();
    if (!server.start())
        etpu_fatal("cannot bind the bench listen socket");
    std::thread run([&server] { server.run(); });

    std::cout << "\n=== serve throughput ===\n"
              << "mixed count/rows/topk/pareto/bucket/characterize "
                 "stream, " << clients << " lockstep clients, "
              << seconds << " s\n\n";

    std::vector<ClientResult> results(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    auto t0 = Clock::now();
    auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(seconds));
    for (unsigned c = 0; c < clients; c++) {
        threads.emplace_back(clientLoop, server.port(), c, deadline,
                             std::ref(results[c]));
    }
    for (std::thread &t : threads)
        t.join();
    double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();

    server.requestStop();
    run.join();

    std::vector<double> latencies;
    uint64_t errors = 0;
    uint64_t retries = 0;
    uint64_t rejections = 0;
    uint64_t reconnects = 0;
    for (const ClientResult &r : results) {
        latencies.insert(latencies.end(), r.latenciesUs.begin(),
                         r.latenciesUs.end());
        errors += r.errors;
        retries += r.counters.retries;
        rejections += r.counters.overloaded;
        reconnects += r.counters.reconnects;
    }
    if (latencies.empty())
        etpu_fatal("no requests completed; is the dataset readable?");
    if (errors) {
        // Retryable outcomes were already absorbed by the client, so
        // anything left is a request that exhausted every attempt.
        etpu_fatal(errors, " requests failed after retries; a perf "
                           "number over a broken run is worthless");
    }
    std::sort(latencies.begin(), latencies.end());
    double qps = static_cast<double>(latencies.size()) / elapsed;
    double p50 = percentile(latencies, 50.0);
    double p99 = percentile(latencies, 99.0);

    std::cout << "requests: " << fmtCount(latencies.size()) << " in "
              << fmtDouble(elapsed, 2) << " s = " << fmtDouble(qps, 1)
              << " qps\nlatency: p50 " << fmtDouble(p50, 1)
              << " us, p99 " << fmtDouble(p99, 1) << " us\n"
              << "resilience: " << retries << " retries, "
              << rejections << " overload rejections, " << reconnects
              << " reconnects\n";

    std::ofstream json(out_path, std::ios::trunc);
    if (!json)
        etpu_fatal("cannot write bench result to ", out_path);
    json << "{\n"
         << "  \"bench_schema\": 1,\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"dataset\": " << jsonQuote(dataset_path) << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"workers\": " << resolveWorkerCount(workers) << ",\n"
         << "  \"seconds\": " << fmtDouble(elapsed, 3) << ",\n"
         << "  \"requests\": " << latencies.size() << ",\n"
         << "  \"qps\": " << fmtDouble(qps, 1) << ",\n"
         << "  \"retries\": " << retries << ",\n"
         << "  \"overloaded\": " << rejections << ",\n"
         << "  \"reconnects\": " << reconnects << ",\n"
         << "  \"latency_us\": {\n"
         << "    \"p50\": " << fmtDouble(p50, 1) << ",\n"
         << "    \"p99\": " << fmtDouble(p99, 1) << "\n"
         << "  }\n}\n";
    json.flush();
    if (!json)
        etpu_fatal("failed writing bench result to ", out_path);
    std::cout << "result written to " << out_path << "\n";
    return 0;
}
