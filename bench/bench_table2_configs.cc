/**
 * @file
 * Table 2: the microarchitectural parameters of the three studied Edge
 * TPU configurations, with peak TOPS derived from the template (2 ops
 * per MAC x MACs/cycle x clock) rather than hard-coded.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/config.hh"
#include "common/table.hh"

namespace
{

using namespace etpu;

void
report()
{
    const auto &configs = arch::allConfigs();
    AsciiTable t("Table 2 — studied Edge TPU configurations");
    t.header({"Parameter", "V1", "V2", "V3"});
    auto row = [&](const std::string &name, auto getter) {
        t.row({name, getter(configs[0]), getter(configs[1]),
               getter(configs[2])});
    };
    using C = arch::AcceleratorConfig;
    row("Clock Frequency (MHz)", [](const C &c) {
        return fmtDouble(c.clockMhz, 0);
    });
    row("# of (X, Y)-PEs", [](const C &c) {
        return "(" + std::to_string(c.xPes) + ", " +
               std::to_string(c.yPes) + ")";
    });
    row("PE Memory (KB)", [](const C &c) {
        return fmtCount(c.peMemoryBytes >> 10);
    });
    row("# of Cores per PE", [](const C &c) {
        return std::to_string(c.coresPerPe);
    });
    row("Core Memory (KB)", [](const C &c) {
        return fmtCount(c.coreMemoryBytes >> 10);
    });
    row("# of Compute Lanes", [](const C &c) {
        return std::to_string(c.computeLanes);
    });
    row("Instruction Memory", [](const C &c) {
        return fmtCount(c.instructionMemoryEntries);
    });
    row("Parameter Memory", [](const C &c) {
        return fmtCount(c.parameterMemoryWords);
    });
    row("Activation Memory", [](const C &c) {
        return fmtCount(c.activationMemoryWords);
    });
    row("I/O Bandwidth (GB/s)", [](const C &c) {
        return fmtDouble(c.ioBandwidthGBs, 0);
    });
    row("Peak TOPS (derived)", [](const C &c) {
        return fmtDouble(c.peakTops(), 2);
    });
    t.print(std::cout);
    std::cout << "paper peak TOPS: 26.2 / 8.73 / 8.73\n";
}

void
BM_DeriveConfigs(benchmark::State &state)
{
    for (auto _ : state) {
        auto v1 = arch::configV1();
        auto v2 = arch::configV2();
        auto v3 = arch::configV3();
        benchmark::DoNotOptimize(v1.peakTops() + v2.peakTops() +
                                 v3.peakTops());
    }
}
BENCHMARK(BM_DeriveConfigs);

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "\n=== Table 2 — accelerator configurations ===\n\n";
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
