/**
 * @file
 * Ablation: evaluation-speed comparison between the learned
 * performance model and the simulator — the paper's motivation for
 * the GNN is replacing "expensive-to-evaluate cycle-accurate
 * simulators" with millisecond-scale learned predictions.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "gnn/model.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

void
BM_SimulatorEvaluation(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    const auto &rec = ds.records[ds.size() / 3];
    sim::Simulator sim(arch::configV1());
    for (auto _ : state) {
        // Full pipeline: lower the network, compile, simulate.
        nas::Network net = nas::buildNetwork(rec.spec);
        auto r = sim.run(net, &rec.spec);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_SimulatorEvaluation)->Unit(benchmark::kMicrosecond);

void
BM_LearnedModelEvaluation(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    const auto &rec = ds.records[ds.size() / 3];
    Rng rng(7);
    gnn::GraphNetModel model;
    model.init({}, rng);
    for (auto _ : state) {
        gnn::GraphsTuple g = gnn::featurize(rec.spec);
        auto r = gnn::forward(model, g);
        benchmark::DoNotOptimize(r.prediction);
    }
}
BENCHMARK(BM_LearnedModelEvaluation)->Unit(benchmark::kMicrosecond);

void
BM_LearnedModelFeaturizedEvaluation(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    gnn::GraphsTuple g = gnn::featurize(ds.records[ds.size() / 3].spec);
    Rng rng(7);
    gnn::GraphNetModel model;
    model.init({}, rng);
    for (auto _ : state) {
        auto r = gnn::forward(model, g);
        benchmark::DoNotOptimize(r.prediction);
    }
}
BENCHMARK(BM_LearnedModelFeaturizedEvaluation)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Ablation — learned model vs simulator evaluation speed",
        "learned predictions land in microseconds-to-milliseconds, "
        "enabling rapid design-space exploration");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
