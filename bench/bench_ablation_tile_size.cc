/**
 * @file
 * Ablation: accelerator tile size. Section 6.1 claims that for the
 * NASBench workloads I/O bandwidth is the deciding factor, so the PE
 * array can shrink with little performance loss. We sweep the PE grid
 * of each configuration (scaling compute but keeping memory and I/O)
 * on representative models.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

void
report()
{
    // Representative cells: small, mid, large (anchors + minimal).
    graph::Dag d2(2);
    d2.addEdge(0, 1);
    std::vector<std::pair<std::string, nas::CellSpec>> cells = {
        {"small", nas::CellSpec(d2, {nas::Op::Input, nas::Op::Output})},
        {"mid", nas::anchorCells()[2].cell},
        {"large", nas::anchorCells()[0].cell},
    };

    const std::pair<int, int> grids[4] = {{2, 1}, {2, 2}, {4, 2},
                                          {4, 4}};
    AsciiTable t("Ablation — PE-array (tile) size sweep on V2");
    t.header({"model", "(X,Y)-PEs", "peak TOPS", "latency ms",
              "vs (4,4)"});
    for (const auto &[label, cell] : cells) {
        nas::Network net = nas::buildNetwork(cell);
        double base;
        {
            sim::Simulator sim(arch::configV2());
            base = sim.run(net, &cell).latencyMs;
        }
        for (auto [x, y] : grids) {
            auto cfg = arch::configV2();
            cfg.xPes = x;
            cfg.yPes = y;
            sim::Simulator sim(cfg);
            double lat = sim.run(net, &cell).latencyMs;
            t.row({label,
                   "(" + std::to_string(x) + "," + std::to_string(y) +
                       ")",
                   fmtDouble(cfg.peakTops(), 2), fmtDouble(lat, 4),
                   fmtDouble(lat / base, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "paper section 6.1: \"we can reduce the accelerator "
                 "tile size and still achieve a similar performance\" "
                 "— large (streaming-bound) models barely slow down; "
                 "small compute-bound models do\n";
}

void
BM_QuarterTileSimulation(benchmark::State &state)
{
    auto cfg = arch::configV2();
    cfg.xPes = 2;
    cfg.yPes = 2;
    sim::Simulator sim(cfg);
    const auto &cell = nas::anchorCells()[0].cell;
    nas::Network net = nas::buildNetwork(cell);
    for (auto _ : state) {
        auto r = sim.run(net, &cell);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_QuarterTileSimulation)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Ablation — tile size",
        "I/O bandwidth, not the PE count, bounds most NASBench models");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
