/**
 * @file
 * Table 5: split the models into three buckets by which configuration
 * yields the lowest latency; report bucket sizes and the average
 * latency/energy of each bucket on every configuration.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;

struct PaperBucket
{
    uint64_t count;
    double lat[3];
    double enV1, enV2;
};

const PaperBucket paperBuckets[3] = {
    {392725, {0.80, 0.90, 0.92}, 3.58, 3.58},
    {24325, {3.73, 3.39, 3.61}, 6.96, 15.67},
    {6570, {2.59, 0.31, 0.25}, 0.85, 0.64},
};

void
report()
{
    const auto &idx = bench::index();
    query::GroupAggregate buckets = idx.groupBy(
        {query::MetricKind::Winner, 0},
        {query::latency(0), query::latency(1), query::latency(2),
         query::energy(0), query::energy(1), query::energy(2)});

    AsciiTable t("Table 5 — per-configuration winner buckets");
    t.header({"Bucket", "# of Models", "V1 lat/en", "V2 lat/en",
              "V3 lat (en N/A in paper)"});
    for (size_t w = 0; w < 3; w++) {
        auto g = buckets.groupOf(static_cast<double>(w));
        uint64_t count = g ? buckets.counts[*g] : 0;
        auto mean = [&](size_t agg) {
            return g ? buckets.mean(agg, *g) : 0.0;
        };
        const PaperBucket &p = paperBuckets[w];
        std::vector<std::string> cells;
        cells.push_back("Latency(" + bench::configName(static_cast<int>(w)) +
                        ") <=");
        cells.push_back(fmtCount(count) + " (paper " +
                        fmtCount(p.count) + ")");
        for (size_t c = 0; c < 3; c++) {
            std::string cell = bench::vsPaper(mean(c), p.lat[c], 2);
            if (c == 0)
                cell += ", " + bench::vsPaper(mean(3), p.enV1, 2);
            if (c == 1)
                cell += ", " + bench::vsPaper(mean(4), p.enV2, 2);
            cells.push_back(cell);
        }
        t.row(cells);
    }
    t.print(std::cout);

    auto v1 = buckets.groupOf(0.0);
    double v1_share = 100.0 * (v1 ? buckets.counts[*v1] : 0) /
                      static_cast<double>(idx.size());
    std::cout << "V1 wins " << fmtDouble(v1_share, 1)
              << "% of all models (paper 92.7%)\n";
}

void
BM_WinnerBucketing(benchmark::State &state)
{
    const auto &idx = bench::index();
    for (auto _ : state) {
        query::GroupAggregate buckets =
            idx.groupBy({query::MetricKind::Winner, 0}, {});
        benchmark::DoNotOptimize(buckets.counts.data());
    }
    state.counters["models"] = static_cast<double>(idx.size());
}
BENCHMARK(BM_WinnerBucketing)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 5 — winner buckets",
        "V1 wins most models; V2 wins the large streamed models; V3 "
        "wins a small bucket of conv1x1/pool-heavy cells where V1 is "
        "~10x slower");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
