/**
 * @file
 * Figure 12: per-operation-count latency statistics for conv3x3,
 * conv1x1 and maxpool3x3 on every configuration, with the best/worst
 * achievable accuracy per operation category (the green/red stars).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

namespace
{

using namespace etpu;

struct PaperStar
{
    const char *op;
    double maxAcc;
    int maxCount;
    double minAcc;
    int minCount;
};

const PaperStar paperStars[3] = {
    {"conv3x3", 95.055, 4, 9.475, 2},
    {"conv1x1", 94.895, 2, 9.492, 1},
    {"maxpool3x3", 94.758, 1, 9.475, 3},
};

void
report()
{
    const auto &ds = bench::dataset();
    for (int op = 0; op < 3; op++) {
        auto count_of = [&](const nas::ModelRecord &r) {
            return op == 0 ? r.numConv3x3
                   : op == 1 ? r.numConv1x1
                             : r.numMaxPool;
        };
        AsciiTable t(std::string("Figure 12 — latency vs #") +
                     paperStars[op].op);
        t.header({"count", "# models", "V1 mean ms", "V2 mean ms",
                  "V3 mean ms", "min..max acc %"});
        for (int n = 1; n <= 5; n++) {
            std::array<std::vector<double>, 3> lat;
            double amin = 2.0, amax = -1.0;
            for (const auto &r : ds.records) {
                if (count_of(r) != n)
                    continue;
                for (int c = 0; c < 3; c++) {
                    lat[static_cast<size_t>(c)].push_back(
                        r.latencyMs[static_cast<size_t>(c)]);
                }
                amin = std::min(amin, static_cast<double>(r.accuracy));
                amax = std::max(amax, static_cast<double>(r.accuracy));
            }
            if (lat[0].empty())
                continue;
            t.row({std::to_string(n), fmtCount(lat[0].size()),
                   fmtDouble(stats::summarize(lat[0]).mean, 3),
                   fmtDouble(stats::summarize(lat[1]).mean, 3),
                   fmtDouble(stats::summarize(lat[2]).mean, 3),
                   fmtDouble(amin * 100, 2) + " .. " +
                       fmtDouble(amax * 100, 3)});
        }
        t.print(std::cout);

        // Category-wide accuracy stars.
        double best_acc = -1, worst_acc = 2;
        int best_n = 0, worst_n = 0;
        for (const auto &r : ds.records) {
            int n = count_of(r);
            if (n == 0)
                continue;
            if (r.accuracy > best_acc) {
                best_acc = r.accuracy;
                best_n = n;
            }
            if (r.accuracy < worst_acc) {
                worst_acc = r.accuracy;
                worst_n = n;
            }
        }
        const PaperStar &p = paperStars[op];
        std::cout << "green star: (" << fmtDouble(best_acc * 100, 3)
                  << "%, " << best_n << ")  paper: ("
                  << fmtDouble(p.maxAcc, 3) << "%, " << p.maxCount
                  << ")\n"
                  << "red star:   (" << fmtDouble(worst_acc * 100, 3)
                  << "%, " << worst_n << ")  paper: ("
                  << fmtDouble(p.minAcc, 3) << "%, " << p.minCount
                  << ")\n\n";
    }
    std::cout << "paper: conv3x3 count dominates latency (most "
                 "parameters); same-count latencies still span "
                 "0.2-5 ms\n";
}

void
BM_OpCountScan(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        double sums[8] = {};
        for (const auto &r : ds.records)
            sums[std::min<int>(r.numConv3x3, 7)] += r.latencyMs[0];
        benchmark::DoNotOptimize(sums[4]);
    }
}
BENCHMARK(BM_OpCountScan)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 12 — op counts vs latency",
        "latency climbs with conv3x3 count; the best model has 4 "
        "conv3x3 at 95.055%, the best pooled model 1 maxpool at "
        "94.758%");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
