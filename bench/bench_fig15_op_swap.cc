/**
 * @file
 * Figure 15: the aggregated latency impact of swapping cell
 * operations. For every cell we substitute all occurrences of one
 * operation type with another, locate the resulting cell in the
 * dataset by isomorphism fingerprint (same adjacency, new ops), and
 * average the latency delta. Percentages follow the paper's
 * convention (delta relative to the post-swap latency).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace etpu;
using nas::Op;

const Op swapOps[3] = {Op::Conv3x3, Op::Conv1x1, Op::MaxPool3x3};
const char *swapNames[3] = {"Conv3x3", "Conv1x1", "MaxPool3x3"};

// paperDelta[cfg][from][to] in ms; paperPct likewise in percent.
const double paperDelta[3][3][3] = {
    {{0, -1.532, -1.608}, {1.683, 0, -0.089}, {1.78, 0.085, 0}},
    {{0, -1.459, -1.504}, {1.463, 0, -0.010}, {1.5, 0.036, 0}},
    {{0, -1.68, -1.75}, {1.65, 0, -0.016}, {1.715, 0.071, 0}},
};
const double paperPct[3][3][3] = {
    {{0, -110.1, -113.4}, {210.7, 0, -7.6}, {229.9, 7.5, 0}},
    {{0, -102.7, -102.4}, {173.6, 0, -0.06}, {174.31, -0.72, 0}},
    {{0, -113.1, -115.4}, {202.39, 0, -4.82}, {214.32, 5.34, 0}},
};

struct SwapResult
{
    double deltaMs[3][3][3] = {};
    double deltaPct[3][3][3] = {};
    uint64_t matched[3][3] = {};
    uint64_t skipped[3][3] = {};
};

SwapResult
computeSwaps()
{
    const auto &ds = bench::dataset();
    SwapResult res;
    double pct_sum[3][3][3] = {};
    for (const auto &r : ds.records) {
        for (int from = 0; from < 3; from++) {
            if ((from == 0 && !r.numConv3x3) ||
                (from == 1 && !r.numConv1x1) ||
                (from == 2 && !r.numMaxPool)) {
                continue;
            }
            for (int to = 0; to < 3; to++) {
                if (from == to)
                    continue;
                nas::CellSpec swapped = r.spec;
                for (auto &op : swapped.ops) {
                    if (op == swapOps[from])
                        op = swapOps[to];
                }
                const nas::ModelRecord *other =
                    bench::findRecord(swapped.fingerprint());
                if (!other) {
                    res.skipped[from][to]++;
                    continue;
                }
                res.matched[from][to]++;
                for (int c = 0; c < 3; c++) {
                    double before = r.latencyMs[static_cast<size_t>(c)];
                    double after =
                        other->latencyMs[static_cast<size_t>(c)];
                    res.deltaMs[c][from][to] += after - before;
                    pct_sum[c][from][to] +=
                        100.0 * (after - before) / after;
                }
            }
        }
    }
    for (int c = 0; c < 3; c++) {
        for (int from = 0; from < 3; from++) {
            for (int to = 0; to < 3; to++) {
                if (!res.matched[from][to])
                    continue;
                double n =
                    static_cast<double>(res.matched[from][to]);
                res.deltaMs[c][from][to] /= n;
                res.deltaPct[c][from][to] = pct_sum[c][from][to] / n;
            }
        }
    }
    return res;
}

void
report()
{
    SwapResult res = computeSwaps();
    for (int c = 0; c < 3; c++) {
        AsciiTable t("Figure 15" + std::string(1, 'a' + c) + " — " +
                     bench::configName(c) +
                     " avg change in latency, ms (ours / paper)");
        t.header({"from \\ to", swapNames[0], swapNames[1],
                  swapNames[2]});
        for (int from = 0; from < 3; from++) {
            std::vector<std::string> cells = {swapNames[from]};
            for (int to = 0; to < 3; to++) {
                if (from == to) {
                    cells.push_back("0");
                } else {
                    cells.push_back(bench::vsPaper(
                        res.deltaMs[c][from][to],
                        paperDelta[c][from][to], 3));
                }
            }
            t.row(cells);
        }
        t.print(std::cout);

        AsciiTable p("Figure 15" + std::string(1, 'a' + c) + " — " +
                     bench::configName(c) +
                     " avg % change in latency (ours / paper)");
        p.header({"from \\ to", swapNames[0], swapNames[1],
                  swapNames[2]});
        for (int from = 0; from < 3; from++) {
            std::vector<std::string> cells = {swapNames[from]};
            for (int to = 0; to < 3; to++) {
                if (from == to) {
                    cells.push_back("0");
                } else {
                    cells.push_back(bench::vsPaper(
                        res.deltaPct[c][from][to],
                        paperPct[c][from][to], 1));
                }
            }
            p.row(cells);
        }
        p.print(std::cout);
    }
    uint64_t matched = 0, skipped = 0;
    for (int from = 0; from < 3; from++) {
        for (int to = 0; to < 3; to++) {
            matched += res.matched[from][to];
            skipped += res.skipped[from][to];
        }
    }
    std::cout << "swaps matched: " << fmtCount(matched)
              << ", skipped (no isomorphic partner in dataset): "
              << fmtCount(skipped) << "\n";
}

void
BM_SwapLookup(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    const auto &rec = ds.records[ds.size() / 2];
    for (auto _ : state) {
        nas::CellSpec swapped = rec.spec;
        for (auto &op : swapped.ops) {
            if (op == Op::Conv3x3)
                op = Op::Conv1x1;
        }
        benchmark::DoNotOptimize(
            bench::findRecord(swapped.fingerprint()));
    }
}
BENCHMARK(BM_SwapLookup)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 15 — operation swap impact",
        "replacing conv1x1/maxpool with conv3x3 raises latency by "
        "~1.5-1.8 ms on all configurations, and the deltas are not "
        "symmetric");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
