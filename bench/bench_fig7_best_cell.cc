/**
 * @file
 * Figure 7: the NASBench cell with the highest mean validation
 * accuracy (95.055%, four 3x3 convolutions, 41,557,898 trainable
 * parameters) and its latency on every configuration.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

const double paperLatency[3] = {4.633768, 4.185697, 4.535305};

void
report()
{
    const nas::AnchorCell &anchor = nas::anchorCells()[0];
    const nas::ModelRecord *rec = bench::anchorRecord(0);
    std::cout << "cell: " << anchor.cell.str() << "\n";
    if (!rec) {
        std::cout << "anchor missing from the dataset sample; "
                     "simulating directly\n";
    }
    std::cout << "params: "
              << fmtCount(rec ? rec->params
                              : nas::countTrainableParams(anchor.cell))
              << " (paper 41,557,898)\n"
              << "accuracy: "
              << fmtDouble(
                     (rec ? rec->accuracy : anchor.accuracy) * 100, 3)
              << "% (paper 95.055%)\n\n";

    AsciiTable t("Figure 7b — latency of the best-accuracy cell");
    t.header({"Accelerator", "Latency ms (ours)", "Latency ms (paper)"});
    double ours[3];
    for (int c = 0; c < 3; c++) {
        if (rec) {
            ours[c] = rec->latencyMs[static_cast<size_t>(c)];
        } else {
            sim::Simulator sim(arch::allConfigs()[static_cast<size_t>(c)]);
            ours[c] = sim.runCell(anchor.cell).latencyMs;
        }
        t.row({bench::configName(c), fmtDouble(ours[c], 6),
               fmtDouble(paperLatency[c], 6)});
    }
    t.print(std::cout);
    int best = 0;
    for (int c = 1; c < 3; c++) {
        if (ours[c] < ours[best])
            best = c;
    }
    std::cout << "winner: " << bench::configName(best)
              << " (paper: V2)\n";
}

void
BM_SimulateFig7Cell(benchmark::State &state)
{
    const auto &cell = nas::anchorCells()[0].cell;
    nas::Network net = nas::buildNetwork(cell);
    sim::Simulator sim(
        arch::allConfigs()[static_cast<size_t>(state.range(0))]);
    for (auto _ : state) {
        auto r = sim.run(net, &cell);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_SimulateFig7Cell)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Figure 7 — best-accuracy cell",
        "the highest-accuracy cell (95.055%) runs fastest on V2 "
        "(4.19 ms, 10% below V1)");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
