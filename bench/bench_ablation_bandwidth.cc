/**
 * @file
 * Ablation: I/O bandwidth sweep. Section 6.1 identifies I/O bandwidth
 * as the deciding microarchitectural factor for the NASBench
 * workloads; we sweep the V1 template's bandwidth and watch the
 * latency of small/mid/large models respond.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "tpusim/simulator.hh"

namespace
{

using namespace etpu;

void
report()
{
    graph::Dag d2(2);
    d2.addEdge(0, 1);
    std::vector<std::pair<std::string, nas::CellSpec>> cells = {
        {"small", nas::CellSpec(d2, {nas::Op::Input, nas::Op::Output})},
        {"mid", nas::anchorCells()[2].cell},
        {"large", nas::anchorCells()[0].cell},
    };

    const double bandwidths[5] = {8, 17, 32, 64, 128};
    AsciiTable t("Ablation — I/O bandwidth sweep on the V1 template");
    t.header({"model", "I/O GB/s", "latency ms", "vs 17 GB/s"});
    for (const auto &[label, cell] : cells) {
        nas::Network net = nas::buildNetwork(cell);
        double base;
        {
            sim::Simulator sim(arch::configV1());
            base = sim.run(net, &cell).latencyMs;
        }
        for (double bw : bandwidths) {
            auto cfg = arch::configV1();
            cfg.ioBandwidthGBs = bw;
            sim::Simulator sim(cfg);
            double lat = sim.run(net, &cell).latencyMs;
            t.row({label, fmtDouble(bw, 0), fmtDouble(lat, 4),
                   fmtDouble(lat / base, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "expected: large models scale almost linearly with "
                 "bandwidth until compute-bound; small cached models "
                 "do not care\n";
}

void
BM_HighBandwidthSimulation(benchmark::State &state)
{
    auto cfg = arch::configV1();
    cfg.ioBandwidthGBs = 64;
    sim::Simulator sim(cfg);
    const auto &cell = nas::anchorCells()[0].cell;
    nas::Network net = nas::buildNetwork(cell);
    for (auto _ : state) {
        auto r = sim.run(net, &cell);
        benchmark::DoNotOptimize(r.latencyMs);
    }
}
BENCHMARK(BM_HighBandwidthSimulation)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Ablation — I/O bandwidth",
        "for NASBench models the I/O bandwidth is the deciding factor "
        "(paper section 6.1)");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
