/**
 * @file
 * Table 1: the distribution of NASBench-101 models across ten equal
 * intervals of trainable parameters. Our parameter accounting matches
 * the released dataset exactly (min 227,274, max 49,979,274), so the
 * bin edges coincide with the paper's.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "stats/histogram.hh"

namespace
{

using namespace etpu;

const uint64_t paperCounts[10] = {210673, 102488, 44272, 3513, 38003,
                                  4413,   15041,  3533,  1209, 479};

void
report()
{
    const auto &ds = bench::dataset();
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &r : ds.records) {
        lo = std::min(lo, r.params);
        hi = std::max(hi, r.params);
    }
    std::cout << "parameter range: [" << fmtCount(lo) << ", "
              << fmtCount(hi) << "]  (paper: [227,274, 49,979,274])\n";

    // Exact [min, max) edges; the max-parameter model clamps into the
    // last bin, matching the paper's interval bookkeeping.
    stats::Histogram hist(static_cast<double>(lo),
                          static_cast<double>(hi), 10);
    for (const auto &r : ds.records)
        hist.add(static_cast<double>(r.params));

    AsciiTable t("Table 1 — models per trainable-parameter interval");
    t.header({"Interval", "# of Models (ours)", "# of Models (paper)"});
    for (int b = 0; b < hist.numBins(); b++) {
        t.row({hist.binLabel(b), fmtCount(hist.count(b)),
               fmtCount(paperCounts[b])});
    }
    t.row({"total", fmtCount(hist.total()), fmtCount(423624)});
    t.print(std::cout);
}

void
BM_ParamHistogram(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        stats::Histogram hist(2e5, 5e7, 10);
        for (const auto &r : ds.records)
            hist.add(static_cast<double>(r.params));
        benchmark::DoNotOptimize(hist.total());
    }
    state.counters["models"] = static_cast<double>(ds.size());
}
BENCHMARK(BM_ParamHistogram)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    etpu::bench::banner(
        "Table 1 — parameter distribution",
        "423,624 models spanning 227,274..49,979,274 trainable "
        "parameters, heavily skewed to the first interval");
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
