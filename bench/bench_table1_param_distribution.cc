/**
 * @file
 * Table 1: the distribution of NASBench-101 models across ten equal
 * intervals of trainable parameters. Our parameter accounting matches
 * the released dataset exactly (min 227,274, max 49,979,274), so the
 * bin edges coincide with the paper's.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hh"
#include "stats/histogram.hh"

namespace
{

using namespace etpu;

const uint64_t paperCounts[10] = {210673, 102488, 44272, 3513, 38003,
                                  4413,   15041,  3533,  1209, 479};

/**
 * This table only needs each model's parameter count, so collect just
 * those (8 bytes/model instead of a full ModelRecord) in one pass.
 * Running before banner() materializes the dataset lets the pass
 * stream shard by shard from the cache.
 */
std::vector<uint64_t>
collectParams()
{
    std::vector<uint64_t> params;
    bench::forEachRecord([&](const nas::ModelRecord &r) {
        params.push_back(r.params);
    });
    return params;
}

void
report(const std::vector<uint64_t> &params)
{
    uint64_t lo = UINT64_MAX, hi = 0;
    for (uint64_t p : params) {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    std::cout << "parameter range: [" << fmtCount(lo) << ", "
              << fmtCount(hi) << "]  (paper: [227,274, 49,979,274])\n";

    // Exact [min, max) edges; the max-parameter model clamps into the
    // last bin, matching the paper's interval bookkeeping.
    stats::Histogram hist(static_cast<double>(lo),
                          static_cast<double>(hi), 10);
    for (uint64_t p : params)
        hist.add(static_cast<double>(p));

    AsciiTable t("Table 1 — models per trainable-parameter interval");
    t.header({"Interval", "# of Models (ours)", "# of Models (paper)"});
    for (int b = 0; b < hist.numBins(); b++) {
        t.row({hist.binLabel(b), fmtCount(hist.count(b)),
               fmtCount(paperCounts[b])});
    }
    t.row({"total", fmtCount(hist.total()), fmtCount(423624)});
    t.print(std::cout);
}

void
BM_ParamHistogram(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        stats::Histogram hist(2e5, 5e7, 10);
        for (const auto &r : ds.records)
            hist.add(static_cast<double>(r.params));
        benchmark::DoNotOptimize(hist.total());
    }
    state.counters["models"] = static_cast<double>(ds.size());
}
BENCHMARK(BM_ParamHistogram)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    std::vector<uint64_t> params = collectParams();
    etpu::bench::banner(
        "Table 1 — parameter distribution",
        "423,624 models spanning 227,274..49,979,274 trainable "
        "parameters, heavily skewed to the first interval");
    report(params);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
